// Storage fault-tolerance subsystem tests: failure injection, heartbeat
// detection, degraded reads through replica failover, and re-replication
// repair — for both the BlobSeer core and the HDFS baseline.
//
// The acceptance scenario (ISSUE 1): with replication=3 and 10% of the
// providers crashed mid-workload, every read of a previously published
// version still succeeds, and the repair service restores the full
// replication degree. Two runs with the same seeds stay byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include <map>
#include <sstream>

#include "blob/cluster.h"
#include "blob/metadata.h"
#include "bsfs/bsfs.h"
#include "common/wordlist.h"
#include "fault/detector.h"
#include "fault/injector.h"
#include "fault/repair.h"
#include "fault/retention.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::fault {
namespace {

constexpr uint64_t kPage = 64;

net::ClusterConfig test_net(uint32_t nodes = 20) {
  net::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.nodes_per_rack = 5;
  cfg.rpc_timeout_s = 0.5;
  return cfg;
}

struct FaultWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster cluster;
  FaultInjector injector;
  FailureDetector detector;

  explicit FaultWorld(net::ClusterConfig ncfg = test_net(),
                      blob::BlobSeerConfig bcfg = {},
                      FaultInjectorConfig icfg = {},
                      FailureDetectorConfig dcfg = detector_cfg())
      : net(sim, ncfg), cluster(sim, net, std::move(bcfg)),
        injector(sim, net, icfg),
        detector(sim, net, storage_nodes(ncfg), dcfg) {
    wire_blobseer(injector, cluster);
    cluster.set_liveness(&detector);
  }

  static FailureDetectorConfig detector_cfg() {
    FailureDetectorConfig cfg;
    cfg.heartbeat_s = 0.2;
    cfg.timeout_s = 0.8;
    cfg.sweep_interval_s = 0.1;
    return cfg;
  }

  static std::vector<net::NodeId> storage_nodes(
      const net::ClusterConfig& cfg) {
    std::vector<net::NodeId> nodes;
    for (net::NodeId n = 1; n < cfg.num_nodes; ++n) nodes.push_back(n);
    return nodes;
  }
};

// Writes `pages` pages of marker data and returns the blob id.
sim::Task<blob::BlobId> stage_blob(blob::BlobClient& c, uint32_t replication,
                                   uint64_t pages, blob::BlobId* out) {
  auto desc = co_await c.create(kPage, replication);
  co_await c.write(desc.id, 0, DataSpec::pattern(42, 0, kPage * pages));
  *out = desc.id;
  co_return desc.id;
}

TEST(Detector, MarksCrashedNodeDeadWithinTimeout) {
  FaultWorld w;
  w.detector.start();
  w.injector.crash_at(5, 1.0);
  double detected_at = -1;
  w.detector.on_death([&](net::NodeId n) {
    if (n == 5 && detected_at < 0) detected_at = w.sim.now();
  });
  w.sim.run_until(10.0);
  w.detector.stop();
  w.sim.run();
  EXPECT_FALSE(w.detector.is_up(5));
  EXPECT_TRUE(w.detector.is_up(6));
  EXPECT_EQ(w.detector.deaths_detected(), 1u);
  // Detection lands after the lease expires but within one timeout + beat
  // + sweep of the crash.
  EXPECT_GT(detected_at, 1.0);
  EXPECT_LT(detected_at, 1.0 + 0.8 + 0.2 + 0.2);
}

TEST(Detector, RecoveryIsDetectedWhenBeatsResume) {
  FaultWorld w;
  w.detector.start();
  w.injector.crash_at(7, 1.0);
  w.injector.recover_at(7, 4.0);
  w.sim.run_until(3.0);
  EXPECT_FALSE(w.detector.is_up(7));
  w.sim.run_until(6.0);
  EXPECT_TRUE(w.detector.is_up(7));
  EXPECT_EQ(w.detector.recoveries_detected(), 1u);
  w.detector.stop();
  w.sim.run();
}

// The acceptance scenario: replication=3, 10% of providers crashed
// mid-workload; all reads of published versions succeed (degraded mode),
// then repair restores the full replication degree.
TEST(FaultRecovery, DegradedReadsSucceedAndRepairRestoresReplication) {
  FaultWorld w;
  auto client = w.cluster.make_client(1);
  blob::BlobId blob = 0;
  constexpr uint64_t kPages = 40;
  auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
    co_await stage_blob(c, /*replication=*/3, kPages, out);
  };
  w.sim.spawn(stage(*client, &blob));
  w.sim.run();
  ASSERT_NE(blob, 0u);

  // Kill 10% of the 19 storage nodes (2 nodes) while readers are active.
  w.detector.start();
  auto victims = w.injector.crash_fraction_at(
      FaultWorld::storage_nodes(w.net.config()), 0.10, /*t=*/w.sim.now() + 0.2);
  ASSERT_EQ(victims.size(), 2u);

  // Readers hammer the blob through the crash window; every read must
  // come back byte-exact (failover to surviving replicas).
  int read_errors = 0;
  auto reader = [](blob::BlobClient& c, blob::BlobId b,
                   int* errs) -> sim::Task<void> {
    auto want = DataSpec::pattern(42, 0, kPage * kPages);
    for (int round = 0; round < 6; ++round) {
      auto got = co_await c.read(b, blob::kNoVersion, 0, kPage * kPages);
      if (!got.content_equals(want)) ++*errs;
    }
  };
  std::vector<std::unique_ptr<blob::BlobClient>> readers;
  for (net::NodeId n = 1; n <= 4; ++n) {
    readers.push_back(w.cluster.make_client(n));
    w.sim.spawn(reader(*readers.back(), blob, &read_errors));
  }
  w.sim.run_until(30.0);
  EXPECT_EQ(read_errors, 0);
  for (net::NodeId v : victims) EXPECT_FALSE(w.detector.is_up(v));

  // Repair: every leaf back to 3 replicas, all on live providers.
  RepairConfig rcfg;
  rcfg.node = 0;
  RepairService repair(w.cluster, w.detector, rcfg);
  RepairStats stats;
  bool repaired = false;
  auto run_repair = [](RepairService& r, blob::BlobId b, RepairStats* out,
                       bool* done) -> sim::Task<void> {
    *out = co_await r.repair_blob(b);
    *done = true;
  };
  w.sim.spawn(run_repair(repair, blob, &stats, &repaired));
  w.sim.run_until(120.0);
  ASSERT_TRUE(repaired);
  EXPECT_GT(stats.under_replicated, 0u);
  EXPECT_GT(stats.replicas_restored, 0u);
  EXPECT_EQ(stats.unrepairable, 0u);

  // Verify through the layout-exposure primitive: every page has exactly 3
  // distinct providers, none of them a victim, and each one serves the page.
  bool verified = false;
  auto verify = [](FaultWorld& world, blob::BlobClient& c, blob::BlobId b,
                   std::vector<net::NodeId> dead,
                   bool* ok) -> sim::Task<void> {
    auto locs = co_await c.locate(b, blob::kNoVersion, 0, kPage * kPages);
    bool good = locs.size() == kPages;
    for (const auto& loc : locs) {
      good = good && loc.providers.size() == 3;
      std::set<net::NodeId> uniq(loc.providers.begin(), loc.providers.end());
      good = good && uniq.size() == loc.providers.size();
      for (net::NodeId p : loc.providers) {
        good = good && std::find(dead.begin(), dead.end(), p) == dead.end();
        auto page = co_await world.cluster.provider_on(p).get_page(
            c.node(), blob::PageKey{b, loc.index, loc.version});
        good = good && page.has_value();
      }
    }
    *ok = good;
  };
  w.sim.spawn(verify(w, *client, blob, victims, &verified));
  w.sim.run_until(200.0);
  EXPECT_TRUE(verified);
  w.detector.stop();
  w.sim.run();
}

TEST(FaultRecovery, SharedAppendOutputSurvivesCrashAndRepair) {
  // The §V shared-output scenario under faults: several writers append
  // whole blocks to ONE BSFS file concurrently (FsClient::append_shared,
  // the MapReduce kSharedAppend commit primitive) while a provider crashes
  // with a wiped disk mid-workload. The file must stay readable through
  // replica failover, and the repair service must restore the replication
  // degree of every appended page.
  FaultWorld w;
  bsfs::NamespaceManager ns(w.sim, w.net, {});
  const uint64_t kBlockBytes = kPage * 4;
  bsfs::Bsfs fs(w.sim, w.net, w.cluster, ns,
                bsfs::BsfsConfig{.block_size = kBlockBytes, .page_size = kPage,
                                 .replication = 2, .enable_cache = true});
  constexpr int kAppenders = 4;
  constexpr int kRounds = 6;

  auto seed_file = [](fs::FileSystem& f) -> sim::Task<void> {
    auto client = f.make_client(1);
    auto writer = co_await client->create("/job/output-shared");
    co_await writer->close();
  };
  w.sim.spawn(seed_file(fs));
  w.sim.run();

  w.detector.start();
  w.injector.crash_at(/*node=*/7, /*t=*/w.sim.now() + 0.3);

  // Appenders overlap each other AND the crash window: each appends one
  // whole block per round, spaced so rounds straddle the failure.
  auto appender = [](sim::Simulator* s, fs::FileSystem* f, net::NodeId node,
                     uint64_t seed, uint64_t block) -> sim::Task<void> {
    auto client = f->make_client(node);
    for (int round = 0; round < kRounds; ++round) {
      auto writer = co_await client->append_shared("/job/output-shared");
      if (writer == nullptr) co_return;
      co_await writer->write(
          DataSpec::pattern(seed + static_cast<uint64_t>(round), 0, block));
      co_await writer->close();
      co_await s->delay(0.1);
    }
  };
  for (int i = 0; i < kAppenders; ++i) {
    w.sim.spawn(appender(&w.sim, &fs, static_cast<net::NodeId>(2 + i),
                         1000 * (i + 1), kBlockBytes));
  }
  w.sim.run_until(10.0);
  EXPECT_FALSE(w.detector.is_up(7));

  // Degraded read: the whole file comes back (failover to the surviving
  // replica of every page the victim held).
  uint64_t read_bytes = 0;
  auto read_all = [](fs::FileSystem& f, uint64_t* out) -> sim::Task<void> {
    auto client = f.make_client(1);
    auto reader = co_await client->open("/job/output-shared");
    if (reader == nullptr) co_return;
    DataSpec all = co_await reader->read(0, reader->size());
    *out = all.size();
  };
  w.sim.spawn(read_all(fs, &read_bytes));
  w.sim.run_until(20.0);
  EXPECT_EQ(read_bytes, static_cast<uint64_t>(kAppenders * kRounds) * kBlockBytes);

  // Repair restores every appended page to 2 replicas; a second pass
  // verifies nothing is left under-replicated.
  blob::BlobId blob = 0;
  auto resolve = [](bsfs::NamespaceManager& n, blob::BlobId* out)
      -> sim::Task<void> {
    auto entry = co_await n.lookup(0, "/job/output-shared");
    if (entry.has_value()) *out = entry->blob;
  };
  w.sim.spawn(resolve(ns, &blob));
  w.sim.run_until(25.0);
  ASSERT_NE(blob, 0u);

  RepairConfig rcfg;
  rcfg.node = 0;
  RepairService repair(w.cluster, w.detector, rcfg);
  RepairStats first, second;
  bool done = false;
  auto run_repair = [](RepairService& r, blob::BlobId b, RepairStats* a,
                       RepairStats* c, bool* out) -> sim::Task<void> {
    *a = co_await r.repair_blob(b);
    *c = co_await r.repair_blob(b);
    *out = true;
  };
  w.sim.spawn(run_repair(repair, blob, &first, &second, &done));
  w.sim.run_until(120.0);
  ASSERT_TRUE(done);
  EXPECT_GT(first.under_replicated, 0u);
  EXPECT_GT(first.replicas_restored, 0u);
  EXPECT_EQ(first.unrepairable, 0u);
  EXPECT_EQ(second.under_replicated, 0u);
  w.detector.stop();
  w.sim.run();
}

TEST(FaultRecovery, NamespaceRepairLeavesIntermediateFilesAlone) {
  // MapReduce shuffle intermediates (_intermediate/) and attempt temp
  // files (_attempts/) are job-lifetime-only: the namespace-driven repair
  // pass must skip them and spend its bandwidth on persistent data only.
  FaultWorld w;
  bsfs::NamespaceManager ns(w.sim, w.net, {});
  bsfs::Bsfs fs(w.sim, w.net, w.cluster, ns,
                bsfs::BsfsConfig{.block_size = kPage * 4, .page_size = kPage,
                                 .replication = 2, .enable_cache = true});

  auto stage = [](fs::FileSystem& f) -> sim::Task<void> {
    auto client = f.make_client(1);
    for (const char* path :
         {"/data/keep", "/out/_intermediate/m00000-a0-r00000",
          "/out/_attempts/att-j0-r-00000-0"}) {
      auto writer = co_await client->create(path);
      co_await writer->write(DataSpec::pattern(7, 0, kPage * 4));
      co_await writer->close();
    }
  };
  w.sim.spawn(stage(fs));
  w.sim.run();

  // Wipe one replica holder of each file (ground-truth liveness: the test
  // is about what repair chooses to scan, not detection).
  std::vector<net::NodeId> victims;
  auto find_victims = [](fs::FileSystem& f,
                         std::vector<net::NodeId>* out) -> sim::Task<void> {
    auto client = f.make_client(0);
    for (const char* path :
         {"/data/keep", "/out/_intermediate/m00000-a0-r00000"}) {
      auto locs = co_await client->locations(path, 0, kPage * 4);
      if (!locs.empty() && !locs[0].hosts.empty()) {
        out->push_back(locs[0].hosts[0]);
      }
    }
  };
  w.sim.spawn(find_victims(fs, &victims));
  w.sim.run();
  ASSERT_EQ(victims.size(), 2u);
  for (net::NodeId v : victims) {
    w.net.set_node_up(v, false);
    w.cluster.crash_provider(v, /*wipe=*/true);
  }

  RepairConfig rcfg;
  rcfg.node = 0;
  RepairService repair(w.cluster, w.net.ground_truth(), rcfg);
  RepairStats ns_pass;
  RepairStats intermediate_only;
  blob::BlobId intermediate_blob = 0;
  bool done = false;
  auto orchestrate = [](RepairService& r, bsfs::Bsfs& f,
                        bsfs::NamespaceManager& names, RepairStats* walk,
                        RepairStats* direct, blob::BlobId* blob,
                        bool* out) -> sim::Task<void> {
    *walk = co_await r.repair_namespace(f);
    auto entry =
        co_await names.lookup(0, "/out/_intermediate/m00000-a0-r00000");
    if (entry.has_value()) *blob = entry->blob;
    *direct = co_await r.repair_blob(*blob);
    *out = true;
  };
  w.sim.spawn(orchestrate(repair, fs, ns, &ns_pass, &intermediate_only,
                          &intermediate_blob, &done));
  w.sim.run_until(60.0);
  ASSERT_TRUE(done);

  // The walk repaired the persistent file...
  EXPECT_GT(ns_pass.under_replicated, 0u);
  EXPECT_GT(ns_pass.replicas_restored, 0u);
  // ...and never looked at the scratch data: a direct pass over the
  // intermediate file's blob still finds it degraded.
  ASSERT_NE(intermediate_blob, 0u);
  EXPECT_GT(intermediate_only.under_replicated, 0u);
  w.sim.run();
}

TEST(FaultRecovery, PinnedVersionReadsSurviveProviderCrash) {
  // The §V snapshot seam under faults: a job-style consumer pins a
  // version, a writer appends past it, and a provider holding pinned
  // pages crashes. Reads through the pin must keep succeeding byte-exact
  // via replica failover — the pinned version is as crash-tolerant as the
  // live one.
  FaultWorld w;
  bsfs::NamespaceManager ns(w.sim, w.net, {});
  const uint64_t kBlockBytes = kPage * 4;
  bsfs::Bsfs fs(w.sim, w.net, w.cluster, ns,
                bsfs::BsfsConfig{.block_size = kBlockBytes, .page_size = kPage,
                                 .replication = 2, .enable_cache = true});

  std::optional<fs::Snapshot> snap;
  std::vector<fs::BlockLocation> pinned_locs;
  auto stage = [](fs::FileSystem& f, std::optional<fs::Snapshot>* out,
                  std::vector<fs::BlockLocation>* locs) -> sim::Task<void> {
    auto client = f.make_client(1);
    auto writer = co_await client->create("/data/log");
    co_await writer->write(DataSpec::pattern(21, 0, kPage * 8));
    co_await writer->close();
    *out = co_await client->snapshot("/data/log");
    if (!out->has_value()) co_return;
    *locs = co_await client->snapshot_locations(**out, 0, (*out)->size);
    // The dataset keeps growing after the pin.
    auto appender = co_await client->append("/data/log");
    co_await appender->write(DataSpec::pattern(22, 0, kPage * 8));
    co_await appender->close();
  };
  w.sim.spawn(stage(fs, &snap, &pinned_locs));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->version, 0u);
  ASSERT_FALSE(pinned_locs.empty());
  ASSERT_FALSE(pinned_locs[0].hosts.empty());

  // Crash a node that serves the pinned version's first block.
  const net::NodeId victim = pinned_locs[0].hosts[0];
  w.detector.start();
  w.injector.crash_at(victim, w.sim.now() + 0.2);
  w.sim.run_until(w.sim.now() + 3.0);  // crash + detection settle
  ASSERT_FALSE(w.detector.is_up(victim));

  bool exact = false;
  auto read_pinned = [](fs::FileSystem& f, const fs::Snapshot& s,
                        bool* ok) -> sim::Task<void> {
    auto client = f.make_client(2);
    auto reader = co_await client->open_snapshot(s);
    if (reader == nullptr || reader->size() != kPage * 8) co_return;
    auto got = co_await reader->read(0, reader->size());
    *ok = got.content_equals(DataSpec::pattern(21, 0, kPage * 8));
  };
  w.sim.spawn(read_pinned(fs, *snap, &exact));
  w.sim.run_until(w.sim.now() + 30.0);
  EXPECT_TRUE(exact);
  w.detector.stop();
  w.sim.run();
}

// A deliberately slow word-count so a retention loop gets many cycles
// inside one job's map phase.
class RetentionWordCount final : public mr::MapReduceApp {
 public:
  std::string name() const override { return "retention-wordcount"; }
  void map(uint64_t, const std::string& line, mr::Emitter& out) override {
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() ||
          std::isspace(static_cast<unsigned char>(line[i]))) {
        if (i > start) out.emit(line.substr(start, i - start), "1");
        start = i + 1;
      }
    }
  }
  void reduce(const std::string& key, const std::vector<std::string>& values,
              mr::Emitter& out) override {
    uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    out.emit(key, std::to_string(total));
  }
  double map_rate_bps() const override { return 4e2; }  // ~0.6 s per block
  double reduce_rate_bps() const override { return 64e3; }
  double map_selectivity() const override { return 1.1; }
  double output_ratio() const override { return 0.05; }
};

TEST(FaultRecovery, RetentionCycleNeverPrunesALiveJobPin) {
  // A RetentionService loop with the tightest window (keep only the
  // latest version) runs concurrently with a MapReduce job over a dataset
  // a writer keeps appending to. The job's Dataset pin must hold the
  // watermark back — its pinned version stays readable for the whole run,
  // probed directly at the version manager — and once the job drains and
  // releases the pin, the very same version is reclaimed.
  FaultWorld w;
  bsfs::NamespaceManager ns(w.sim, w.net, {});
  const uint64_t kBlockBytes = kPage * 4;
  bsfs::Bsfs fs(w.sim, w.net, w.cluster, ns,
                bsfs::BsfsConfig{.block_size = kBlockBytes, .page_size = kPage,
                                 .replication = 1, .enable_cache = true});

  Rng rng(61);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlockBytes * 8) {
    std::string line = random_sentence(rng, 1 + rng.below(6));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  auto stage = [](fs::FileSystem& f, std::string body) -> sim::Task<void> {
    auto client = f.make_client(0);
    auto writer = co_await client->create("/in");
    co_await writer->write(DataSpec::from_string(std::move(body)));
    co_await writer->close();
  };
  w.sim.spawn(stage(fs, text));
  w.sim.run();

  RetentionService retention(
      fs, RetentionConfig{.node = 0, .period_s = 0.3, .keep_last = 1});
  retention.start();

  // Continuous ingest: unaligned appends, so each one read-modify-writes
  // the short tail page and leaves reclaimable history behind it.
  bool job_done = false;
  auto appender = [](sim::Simulator* s, fs::FileSystem* f,
                     const bool* done) -> sim::Task<void> {
    auto client = f->make_client(3);
    while (!*done) {
      co_await s->delay(0.4);
      auto writer = co_await client->append("/in");
      if (writer == nullptr) co_return;
      co_await writer->write(DataSpec::from_string("ingested words here\n"));
      co_await writer->close();
    }
  };

  RetentionWordCount app;
  mr::MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mr::MapReduceCluster cluster(w.sim, w.net, fs, mcfg);
  mr::JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = kPage;
  mr::JobStats stats;
  auto run = [](mr::MapReduceCluster* c, mr::JobConfig conf, mr::JobStats* out,
                bool* done) -> sim::Task<void> {
    *out = co_await c->run_job(std::move(conf));
    *done = true;
  };

  // Probe: while the job runs, its pinned version must stay available at
  // the version manager, retention cycles notwithstanding.
  blob::Version pinned_version = blob::kNoVersion;
  int pin_violations = 0;
  auto probe = [](sim::Simulator* s, bsfs::Bsfs* f, const bool* done,
                  blob::Version* pinned, int* violations) -> sim::Task<void> {
    auto entry = co_await f->ns().lookup(0, "/in");
    if (!entry.has_value()) co_return;
    while (!*done) {
      co_await s->delay(0.25);
      if (*done) break;
      const auto oldest = f->registry().oldest_pinned("/in");
      if (!oldest.has_value() || *oldest == 0) continue;
      *pinned = static_cast<blob::Version>(*oldest);
      auto info = co_await f->blobs().version_manager().version_info(
          0, entry->blob, *pinned);
      if (!info.has_value()) ++*violations;
    }
  };

  w.sim.spawn(run(&cluster, std::move(jc), &stats, &job_done));
  w.sim.spawn(appender(&w.sim, &fs, &job_done));
  w.sim.spawn(probe(&w.sim, &fs, &job_done, &pinned_version, &pin_violations));
  // The retention loop keeps the event queue alive; bound the run, then
  // stop it and drain.
  w.sim.run_until(30.0);
  ASSERT_TRUE(job_done);
  retention.stop();
  w.sim.run();

  // The pin held: never a cycle where the pinned version was unavailable,
  // and the job's output is exactly the pinned text's word counts.
  EXPECT_EQ(pin_violations, 0);
  ASSERT_NE(pinned_version, blob::kNoVersion);
  EXPECT_GT(retention.total().passes, 3u);  // retention really ran mid-job
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got.count("ingested"), 0u);
  EXPECT_EQ(got, expect);
  EXPECT_GT(stats.bytes_ingested_during_job, 0u);

  // With the job drained (pin released), one more pass reclaims the very
  // version the job was holding.
  RetentionStats final_pass;
  auto sweep = [](RetentionService* r, RetentionStats* out) -> sim::Task<void> {
    *out = co_await r->run_pass();
  };
  w.sim.spawn(sweep(&retention, &final_pass));
  w.sim.run();
  EXPECT_EQ(fs.registry().live_pins(), 0u);
  bool pinned_gone = false;
  auto check = [](bsfs::Bsfs* f, blob::Version v, bool* gone) -> sim::Task<void> {
    auto entry = co_await f->ns().lookup(0, "/in");
    auto info = co_await f->blobs().version_manager().version_info(
        0, entry->blob, v);
    *gone = !info.has_value();
  };
  w.sim.spawn(check(&fs, pinned_version, &pinned_gone));
  w.sim.run();
  EXPECT_TRUE(pinned_gone);
  EXPECT_GT(retention.total().bytes_reclaimed, 0u);
}

TEST(FaultRecovery, WriteSurvivesProviderCrashMidWrite) {
  FaultWorld w;
  auto client = w.cluster.make_client(1);
  w.detector.start();
  // Crash two providers while the write's page transfers are in flight
  // (the 48 MiB of replica traffic takes ~0.5 s of simulated time): the
  // affected replica stores fail and are re-placed; the write still
  // publishes and reads back byte-exact.
  constexpr uint64_t kBigPage = 256 << 10;
  w.injector.crash_at(3, 0.05);
  w.injector.crash_at(9, 0.15);
  bool ok = false;
  auto proc = [](blob::BlobClient& c, bool* out) -> sim::Task<void> {
    auto desc = co_await c.create(kBigPage, /*replication=*/3);
    auto payload = DataSpec::pattern(7, 0, kBigPage * 64);
    const blob::Version v = co_await c.write(desc.id, 0, payload);
    auto back = co_await c.read(desc.id, v, 0, kBigPage * 64);
    *out = back.content_equals(payload);
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run_until(60.0);
  EXPECT_TRUE(ok);
  EXPECT_GT(client->write_replica_failures(), 0u);
  w.detector.stop();
  w.sim.run();
}

TEST(FaultRecovery, CorrelatedRackFailureStaysReadable) {
  // Rack-aware placement puts the second replica off the first's rack, so
  // losing an entire rack must leave every page readable at replication=2.
  FaultWorld w;
  auto client = w.cluster.make_client(1);
  blob::BlobId blob = 0;
  auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
    co_await stage_blob(c, /*replication=*/2, 30, out);
  };
  w.sim.spawn(stage(*client, &blob));
  w.sim.run();

  w.detector.start();
  auto victims = w.injector.crash_rack_at(
      2, FaultWorld::storage_nodes(w.net.config()), w.sim.now() + 0.1);
  ASSERT_EQ(victims.size(), 5u);  // nodes 10..14

  bool ok = false;
  auto reader = [](blob::BlobClient& c, blob::BlobId b,
                   bool* out) -> sim::Task<void> {
    auto want = DataSpec::pattern(42, 0, kPage * 30);
    auto got = co_await c.read(b, blob::kNoVersion, 0, kPage * 30);
    *out = got.content_equals(want);
  };
  w.sim.spawn(reader(*client, blob, &ok));
  w.sim.run_until(60.0);
  EXPECT_TRUE(ok);
  w.detector.stop();
  w.sim.run();
}

TEST(FaultRecovery, PlacementExcludesDetectedDeadNodes) {
  FaultWorld w;
  w.detector.start();
  w.injector.crash_at(2, 0.5);
  w.injector.crash_at(11, 0.5);
  w.sim.run_until(5.0);  // well past detection
  ASSERT_FALSE(w.detector.is_up(2));

  auto client = w.cluster.make_client(1);
  blob::BlobId blob = 0;
  auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
    co_await stage_blob(c, /*replication=*/3, 32, out);
  };
  w.sim.spawn(stage(*client, &blob));
  w.sim.run_until(30.0);

  bool placed_on_dead = false;
  bool located = false;
  auto check = [](blob::BlobClient& c, blob::BlobId b, bool* dead,
                  bool* done) -> sim::Task<void> {
    auto locs = co_await c.locate(b, blob::kNoVersion, 0, kPage * 32);
    for (const auto& loc : locs) {
      for (net::NodeId p : loc.providers) {
        if (p == 2 || p == 11) *dead = true;
      }
    }
    *done = true;
  };
  w.sim.spawn(check(*client, blob, &placed_on_dead, &located));
  w.sim.run_until(40.0);
  ASSERT_TRUE(located);
  EXPECT_FALSE(placed_on_dead);
  w.detector.stop();
  w.sim.run();
}

TEST(FaultRecovery, DeterministicUnderFaults) {
  // Two identical runs of the full crash→detect→repair pipeline must agree
  // exactly: same victims, same event counts, same finish times.
  auto run_once = [](uint64_t* events, double* t_end, uint64_t* restored,
                     std::vector<net::NodeId>* victims) {
    FaultWorld w;
    auto client = w.cluster.make_client(1);
    blob::BlobId blob = 0;
    auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
      co_await stage_blob(c, 3, 24, out);
    };
    w.sim.spawn(stage(*client, &blob));
    w.sim.run();
    w.detector.start();
    *victims = w.injector.crash_fraction_at(
        FaultWorld::storage_nodes(w.net.config()), 0.10, w.sim.now() + 0.3);
    RepairService repair(w.cluster, w.detector, RepairConfig{});
    RepairStats stats;
    auto orchestrate = [](FaultWorld& world, RepairService& r,
                          blob::BlobId b, RepairStats* out) -> sim::Task<void> {
      co_await world.sim.delay(3.0);  // crash + detection settle
      *out = co_await r.repair_blob(b);
      world.detector.stop();
    };
    w.sim.spawn(orchestrate(w, repair, blob, &stats));
    w.sim.run();
    *events = w.sim.events_processed();
    *t_end = w.sim.now();
    *restored = stats.replicas_restored;
  };
  uint64_t e1 = 0, e2 = 0, r1 = 0, r2 = 0;
  double t1 = 0, t2 = 0;
  std::vector<net::NodeId> v1, v2;
  run_once(&e1, &t1, &r1, &v1);
  run_once(&e2, &t2, &r2, &v2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1, 0u);
}

TEST(FaultRecovery, HdfsDatanodeDeathFailoverAndReRepair) {
  net::ClusterConfig ncfg = test_net();
  sim::Simulator sim;
  net::Network net(sim, ncfg);
  hdfs::HdfsConfig hcfg;
  hcfg.namenode.node = 0;
  hcfg.namenode.block_size = 4 * kPage;
  hcfg.namenode.replication = 3;
  std::vector<net::NodeId> datanodes = FaultWorld::storage_nodes(ncfg);
  hdfs::Hdfs fs(sim, net, hcfg, datanodes);
  FaultInjector injector(sim, net, FaultInjectorConfig{});
  wire_hdfs(injector, fs);
  FailureDetectorConfig dcfg = FaultWorld::detector_cfg();
  FailureDetector detector(sim, net, datanodes, dcfg);
  fs.set_liveness(&detector);

  // Stage a file of 6 blocks.
  const uint64_t bytes = 6 * hcfg.namenode.block_size;
  auto stage = [](hdfs::Hdfs& f, uint64_t n) -> sim::Task<void> {
    auto client = f.make_client(1);
    auto writer = co_await client->create("/data/f");
    const bool wrote = co_await writer->write(DataSpec::pattern(9, 0, n));
    BS_CHECK(wrote);
    const bool closed = co_await writer->close();
    BS_CHECK(closed);
  };
  sim.spawn(stage(fs, bytes));
  sim.run();

  detector.start();
  auto victims = injector.crash_fraction_at(datanodes, 0.10, sim.now() + 0.2);
  ASSERT_EQ(victims.size(), 2u);

  // Reads fail over to surviving replicas while the nodes are dead.
  bool read_ok = false;
  auto reader = [](hdfs::Hdfs& f, uint64_t n, bool* ok) -> sim::Task<void> {
    auto client = f.make_client(3);
    auto r = co_await client->open("/data/f");
    auto got = co_await r->read(0, n);
    *ok = got.content_equals(DataSpec::pattern(9, 0, n));
  };
  sim.spawn(reader(fs, bytes, &read_ok));
  sim.run_until(30.0);
  EXPECT_TRUE(read_ok);

  // NameNode-driven re-replication restores the degree on live datanodes.
  hdfs::Hdfs::RepairStats stats;
  bool repaired = false;
  auto do_repair = [](hdfs::Hdfs& f, hdfs::Hdfs::RepairStats* out,
                      bool* done) -> sim::Task<void> {
    *out = co_await f.repair_under_replicated(0);
    *done = true;
  };
  sim.spawn(do_repair(fs, &stats, &repaired));
  sim.run_until(200.0);
  ASSERT_TRUE(repaired);
  EXPECT_EQ(stats.unrepairable, 0u);

  bool degree_ok = true;
  auto check = [&] {
    auto still_under = fs.namenode().scan_under_replicated();
    degree_ok = still_under.empty();
  };
  check();
  EXPECT_TRUE(degree_ok);
  detector.stop();
  sim.run();
}

TEST(FaultRecovery, WipedAndRecoveredReplicaIsReCreated) {
  // A provider that crashed with a wiped disk and came back is up but
  // empty: repair must trust block reports (has_page), not liveness, and
  // re-create its lost replicas.
  FaultWorld w;
  auto client = w.cluster.make_client(1);
  blob::BlobId blob = 0;
  auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
    co_await stage_blob(c, /*replication=*/2, 20, out);
  };
  w.sim.spawn(stage(*client, &blob));
  w.sim.run();

  // 40 replicas over 20 providers: node 4 holds some. Wipe + instant
  // recovery: every node is up again, ground truth and detector agree.
  w.cluster.crash_provider(4, /*wipe_storage=*/true);
  w.cluster.recover_provider(4);

  RepairService repair(w.cluster, w.net.ground_truth(), RepairConfig{});
  RepairStats stats;
  auto run_repair = [](RepairService& r, blob::BlobId b,
                       RepairStats* out) -> sim::Task<void> {
    *out = co_await r.repair_blob(b);
  };
  w.sim.spawn(run_repair(repair, blob, &stats));
  w.sim.run();
  EXPECT_GT(stats.under_replicated, 0u);
  EXPECT_GT(stats.replicas_restored, 0u);
  EXPECT_EQ(stats.unrepairable, 0u);

  // Every leaf's replicas must now actually hold the page.
  bool all_present = false;
  auto verify = [](FaultWorld& world, blob::BlobClient& c, blob::BlobId b,
                   bool* ok) -> sim::Task<void> {
    auto locs = co_await c.locate(b, blob::kNoVersion, 0, kPage * 20);
    bool good = locs.size() == 20;
    for (const auto& loc : locs) {
      good = good && loc.providers.size() == 2;
      for (net::NodeId p : loc.providers) {
        good = good && world.cluster.provider_on(p).has_page(
                           blob::PageKey{b, loc.index, loc.version});
      }
    }
    *ok = good;
  };
  w.sim.spawn(verify(w, *client, blob, &all_present));
  w.sim.run();
  EXPECT_TRUE(all_present);
}

TEST(FaultRecovery, RepairIsIdempotentOnHealthyBlob) {
  FaultWorld w;
  auto client = w.cluster.make_client(1);
  blob::BlobId blob = 0;
  auto stage = [](blob::BlobClient& c, blob::BlobId* out) -> sim::Task<void> {
    co_await stage_blob(c, 3, 16, out);
  };
  w.sim.spawn(stage(*client, &blob));
  w.sim.run();

  RepairService repair(w.cluster, w.net.ground_truth(), RepairConfig{});
  RepairStats stats;
  stats.replicas_restored = 99;
  auto run_repair = [](RepairService& r, blob::BlobId b,
                       RepairStats* out) -> sim::Task<void> {
    *out = co_await r.repair_blob(b);
  };
  w.sim.spawn(run_repair(repair, blob, &stats));
  w.sim.run();
  EXPECT_EQ(stats.under_replicated, 0u);
  EXPECT_EQ(stats.replicas_restored, 0u);
  EXPECT_EQ(stats.bytes_copied, 0u);
}

}  // namespace
}  // namespace bs::fault
