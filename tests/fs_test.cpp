// File-system layer tests.
//
// The generic suite runs against BOTH back-ends through the fs::FileSystem
// interface (parameterized), verifying identical observable semantics for
// everything the MapReduce framework relies on. Back-end-specific suites
// check BSFS's cache/prefetch/versioning and HDFS's single-writer,
// no-append, and placement policy.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "fs/filesystem.h"
#include "hdfs/hdfs.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs {
namespace {

constexpr uint64_t kBlock = 4096;  // small blocks exercise multi-block paths
constexpr uint64_t kPage = 1024;

net::ClusterConfig test_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.nodes_per_rack = 4;
  return cfg;
}

bsfs::BsfsConfig bsfs_config() {
  bsfs::BsfsConfig cfg;
  cfg.block_size = kBlock;
  cfg.page_size = kPage;
  return cfg;
}

hdfs::HdfsConfig hdfs_config() {
  hdfs::HdfsConfig cfg;
  cfg.namenode.block_size = kBlock;
  cfg.namenode.replication = 1;
  return cfg;
}

// A world holding both file systems over one simulated cluster.
struct FsWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;
  hdfs::Hdfs hdfs;

  FsWorld()
      : net(sim, test_net()), blobs(sim, net, {}),
        ns(sim, net, bsfs::NamespaceConfig{}),
        bsfs(sim, net, blobs, ns, bsfs_config()),
        hdfs(sim, net, hdfs_config()) {}

  fs::FileSystem& get(const std::string& name) {
    if (name == "BSFS") return bsfs;
    return hdfs;
  }
};

// Writes `data` to `path` as one call and closes. Returns success.
sim::Task<bool> write_file(fs::FsClient& client, std::string path,
                           DataSpec data) {
  auto writer = co_await client.create(path);
  if (!writer) co_return false;
  const bool wrote = co_await writer->write(std::move(data));
  if (!wrote) co_return false;
  co_return co_await writer->close();
}

sim::Task<std::optional<Bytes>> read_file(fs::FsClient& client,
                                          std::string path) {
  auto reader = co_await client.open(path);
  if (!reader) co_return std::nullopt;
  DataSpec all = co_await reader->read(0, reader->size());
  co_return all.materialize();
}

class FsInterfaceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FsInterfaceTest, CreateWriteReadRoundtrip) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(3);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    const std::string content = "the quick brown fox\n";
    const bool wrote =
        co_await write_file(c, "/data/f1", DataSpec::from_string(content));
    if (!wrote) co_return;
    auto got = co_await read_file(c, "/data/f1");
    *out = got.has_value() &&
           std::string(got->begin(), got->end()) == content;
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST_P(FsInterfaceTest, MultiBlockFileRoundtrip) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    auto payload = DataSpec::pattern(9, 0, kBlock * 5 + 123);
    const bool wrote = co_await write_file(c, "/big", payload);
    if (!wrote) co_return;
    auto st = co_await c.stat("/big");
    if (!st || st->size != kBlock * 5 + 123) co_return;
    auto reader = co_await c.open("/big");
    if (!reader) co_return;
    auto all = co_await reader->read(0, reader->size());
    *out = all.content_equals(payload);
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST_P(FsInterfaceTest, SubrangeReadsAcrossBlockBoundaries) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(1);
  int failures = -1;
  auto proc = [](fs::FsClient& c, int* fails) -> sim::Task<void> {
    auto payload = DataSpec::pattern(4, 0, kBlock * 3);
    const bool wrote = co_await write_file(c, "/f", payload);
    if (!wrote) co_return;
    auto reader = co_await c.open("/f");
    if (!reader) co_return;
    *fails = 0;
    const uint64_t offs[] = {0, 1, kBlock - 1, kBlock, kBlock + 1,
                             2 * kBlock + 77};
    const uint64_t lens[] = {1, 100, kBlock, kBlock + 33};
    for (uint64_t off : offs) {
      for (uint64_t len : lens) {
        if (off + len > kBlock * 3) continue;
        auto got = co_await reader->read(off, len);
        if (!got.content_equals(payload.slice(off, len))) ++*fails;
      }
    }
  };
  w.sim.spawn(proc(*client, &failures));
  w.sim.run();
  EXPECT_EQ(failures, 0);
}

TEST_P(FsInterfaceTest, ManySmallWritesAccumulate) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(2);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    auto writer = co_await c.create("/chunks");
    if (!writer) co_return;
    // 4 KB-ish records, the paper's record size relative to blocks.
    const uint64_t total = kBlock * 2 + 500;
    uint64_t written = 0;
    while (written < total) {
      const uint64_t n = std::min<uint64_t>(257, total - written);
      const bool ok2 = co_await writer->write(DataSpec::pattern(11, written, n));
      if (!ok2) co_return;
      written += n;
    }
    const bool closed = co_await writer->close();
    if (!closed) co_return;
    auto got = co_await read_file(c, "/chunks");
    *out = got.has_value() &&
           DataSpec::from_bytes(*got).content_equals(
               DataSpec::pattern(11, 0, total));
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST_P(FsInterfaceTest, CreateFailsIfExists) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  bool first = false, second = true;
  auto proc = [](fs::FsClient& c, bool* a, bool* b) -> sim::Task<void> {
    *a = co_await write_file(c, "/dup", DataSpec::from_string("x"));
    auto writer = co_await c.create("/dup");
    *b = writer != nullptr;
  };
  w.sim.spawn(proc(*client, &first, &second));
  w.sim.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST_P(FsInterfaceTest, OpenMissingReturnsNull) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  bool null_reader = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    auto reader = co_await c.open("/no/such/file");
    *out = reader == nullptr;
  };
  w.sim.spawn(proc(*client, &null_reader));
  w.sim.run();
  EXPECT_TRUE(null_reader);
}

TEST_P(FsInterfaceTest, FileInvisibleUntilClosed) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  auto client2 = w.get(GetParam()).make_client(1);
  bool invisible = false, visible = false;
  auto proc = [](fs::FsClient& c, fs::FsClient& c2, bool* inv,
                 bool* vis) -> sim::Task<void> {
    auto writer = co_await c.create("/wip");
    co_await writer->write(DataSpec::pattern(1, 0, kBlock));
    auto reader = co_await c2.open("/wip");
    *inv = reader == nullptr;  // under construction
    co_await writer->close();
    auto reader2 = co_await c2.open("/wip");
    *vis = reader2 != nullptr;
  };
  w.sim.spawn(proc(*client, *client2, &invisible, &visible));
  w.sim.run();
  EXPECT_TRUE(invisible);
  EXPECT_TRUE(visible);
}

TEST_P(FsInterfaceTest, ListAndRemove) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  std::vector<std::string> listed;
  bool removed = false, gone = false;
  auto proc = [](fs::FsClient& c, std::vector<std::string>* ls, bool* rm,
                 bool* g) -> sim::Task<void> {
    co_await write_file(c, "/dir/a", DataSpec::from_string("1"));
    co_await write_file(c, "/dir/b", DataSpec::from_string("2"));
    co_await write_file(c, "/dir/sub/c", DataSpec::from_string("3"));
    *ls = co_await c.list("/dir");
    *rm = co_await c.remove("/dir/a");
    auto st = co_await c.stat("/dir/a");
    *g = !st.has_value();
  };
  w.sim.spawn(proc(*client, &listed, &removed, &gone));
  w.sim.run();
  // Direct children only: a, b, and the sub directory.
  std::set<std::string> set(listed.begin(), listed.end());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count("/dir/a"));
  EXPECT_TRUE(set.count("/dir/b"));
  EXPECT_TRUE(set.count("/dir/sub"));
  EXPECT_TRUE(removed);
  EXPECT_TRUE(gone);
}

TEST_P(FsInterfaceTest, LocationsCoverWholeFile) {
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  std::vector<fs::BlockLocation> locs;
  uint64_t size = 0;
  auto proc = [](fs::FsClient& c, std::vector<fs::BlockLocation>* out,
                 uint64_t* sz) -> sim::Task<void> {
    const uint64_t total = kBlock * 4 + 17;
    co_await write_file(c, "/located", DataSpec::pattern(3, 0, total));
    *out = co_await c.locations("/located", 0, total);
    auto st = co_await c.stat("/located");
    *sz = st->size;
  };
  w.sim.spawn(proc(*client, &locs, &size));
  w.sim.run();
  ASSERT_EQ(locs.size(), 5u);
  uint64_t covered = 0;
  for (const auto& l : locs) {
    EXPECT_FALSE(l.hosts.empty());
    covered += l.length;
  }
  EXPECT_EQ(covered, size);
  // Blocks are reported in file order.
  for (size_t i = 1; i < locs.size(); ++i) {
    EXPECT_GT(locs[i].offset, locs[i - 1].offset);
  }
}

TEST_P(FsInterfaceTest, RenameOntoExistingDestinationFails) {
  // The MapReduce commit primitive: a rename must never overwrite an
  // existing destination — both back-ends have to agree, or a task commit
  // that lost a speculative race on one system would silently clobber the
  // winner's output on the other.
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  bool renamed = true;
  std::optional<Bytes> dst_after, src_after;
  auto proc = [](fs::FsClient& c, bool* rn, std::optional<Bytes>* dst,
                 std::optional<Bytes>* src) -> sim::Task<void> {
    co_await write_file(c, "/out/part", DataSpec::from_string("winner"));
    co_await write_file(c, "/out/tmp", DataSpec::from_string("latecomer"));
    *rn = co_await c.rename("/out/tmp", "/out/part");
    *dst = co_await read_file(c, "/out/part");
    *src = co_await read_file(c, "/out/tmp");
  };
  w.sim.spawn(proc(*client, &renamed, &dst_after, &src_after));
  w.sim.run();
  EXPECT_FALSE(renamed);
  ASSERT_TRUE(dst_after.has_value());
  EXPECT_EQ(std::string(dst_after->begin(), dst_after->end()), "winner");
  // The failed rename leaves the source in place for the loser to remove.
  ASSERT_TRUE(src_after.has_value());
  EXPECT_EQ(std::string(src_after->begin(), src_after->end()), "latecomer");
}

TEST_P(FsInterfaceTest, RacingCommitsToOnePartFileLeaveOneWinner) {
  // Two attempts commit the same part file concurrently; exactly one
  // rename may win, and the surviving file is exactly the winner's bytes.
  FsWorld w;
  auto c1 = w.get(GetParam()).make_client(1);
  auto c2 = w.get(GetParam()).make_client(2);
  bool won1 = false, won2 = false;
  auto committer = [](fs::FsClient& c, std::string tmp,
                      std::string text, bool* won) -> sim::Task<void> {
    co_await write_file(c, tmp, DataSpec::from_string(std::move(text)));
    *won = co_await c.rename(tmp, "/out/part-r-00000");
    if (!*won) co_await c.remove(tmp);
  };
  w.sim.spawn(committer(*c1, "/out/_attempts/a0", "attempt-zero", &won1));
  w.sim.spawn(committer(*c2, "/out/_attempts/a1", "attempt-one!", &won2));
  w.sim.run();
  EXPECT_NE(won1, won2) << "exactly one racing rename must win";
  std::optional<Bytes> final_bytes;
  std::vector<std::string> leftovers;
  auto check = [](fs::FsClient& c, std::optional<Bytes>* out,
                  std::vector<std::string>* tmp) -> sim::Task<void> {
    *out = co_await read_file(c, "/out/part-r-00000");
    *tmp = co_await c.list("/out/_attempts");
  };
  w.sim.spawn(check(*c1, &final_bytes, &leftovers));
  w.sim.run();
  ASSERT_TRUE(final_bytes.has_value());
  const std::string got(final_bytes->begin(), final_bytes->end());
  EXPECT_EQ(got, won1 ? "attempt-zero" : "attempt-one!");
  EXPECT_TRUE(leftovers.empty());
}

TEST_P(FsInterfaceTest, VersionedNamesResolveLiteralEntriesFirst) {
  // A file whose name literally ends in "@v<N>" must behave like any other
  // file on BOTH back-ends: stat/open/remove resolve the literal entry, and
  // the versioned-path interpretation never shadows it (round-trip safety
  // for the BSFS "@v" convention; plain characters on HDFS).
  FsWorld w;
  auto client = w.get(GetParam()).make_client(0);
  std::optional<fs::FileStat> st;
  std::optional<Bytes> content;
  bool removed = false, gone = false;
  auto proc = [](fs::FsClient& c, std::optional<fs::FileStat>* s,
                 std::optional<Bytes>* data, bool* rm,
                 bool* g) -> sim::Task<void> {
    co_await write_file(c, "/out/f@v2", DataSpec::from_string("literal"));
    *s = co_await c.stat("/out/f@v2");
    *data = co_await read_file(c, "/out/f@v2");
    *rm = co_await c.remove("/out/f@v2");
    auto after = co_await c.stat("/out/f@v2");
    *g = !after.has_value();
  };
  w.sim.spawn(proc(*client, &st, &content, &removed, &gone));
  w.sim.run();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 7u);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(std::string(content->begin(), content->end()), "literal");
  EXPECT_TRUE(removed);
  EXPECT_TRUE(gone);
}

TEST_P(FsInterfaceTest, DirectoryComponentsContainingVersionSyntaxAreLiteral) {
  // "@v<digits>" is version syntax only in the FINAL component: a
  // directory named "logs@v2" is an ordinary directory, and paths through
  // it stat/list/read identically on both back-ends.
  FsWorld w;
  auto client = w.get(GetParam()).make_client(1);
  std::optional<fs::FileStat> dir_st, file_st;
  std::vector<std::string> listed;
  std::optional<Bytes> content;
  auto proc = [](fs::FsClient& c, std::optional<fs::FileStat>* ds,
                 std::optional<fs::FileStat>* fst,
                 std::vector<std::string>* ls,
                 std::optional<Bytes>* data) -> sim::Task<void> {
    co_await write_file(c, "/logs@v2/f", DataSpec::from_string("payload"));
    *ds = co_await c.stat("/logs@v2");
    *fst = co_await c.stat("/logs@v2/f");
    *ls = co_await c.list("/logs@v2");
    *data = co_await read_file(c, "/logs@v2/f");
  };
  w.sim.spawn(proc(*client, &dir_st, &file_st, &listed, &content));
  w.sim.run();
  ASSERT_TRUE(dir_st.has_value());
  EXPECT_TRUE(dir_st->is_dir);
  ASSERT_TRUE(file_st.has_value());
  EXPECT_EQ(file_st->size, 7u);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0], "/logs@v2/f");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(std::string(content->begin(), content->end()), "payload");
}

TEST_P(FsInterfaceTest, RemoveOfAVersionedNameNeverDropsHistory) {
  // remove("<path>@v<N>") with no literal entry of that name must fail on
  // both back-ends — versions are pruned by GC/retention policy, never by
  // a path-level remove — and the base file stays fully intact.
  FsWorld w;
  const bool bsfs = std::string(GetParam()) == "BSFS";
  auto client = w.get(GetParam()).make_client(0);
  bool removed = true;
  std::optional<fs::FileStat> base_st, v1_st;
  auto proc = [](fs::FsClient& c, bool* rm, std::optional<fs::FileStat>* base,
                 std::optional<fs::FileStat>* v1) -> sim::Task<void> {
    co_await write_file(c, "/keep", DataSpec::pattern(8, 0, kBlock));
    *rm = co_await c.remove("/keep@v1");
    *base = co_await c.stat("/keep");
    *v1 = co_await c.stat("/keep@v1");
  };
  w.sim.spawn(proc(*client, &removed, &base_st, &v1_st));
  w.sim.run();
  EXPECT_FALSE(removed);
  ASSERT_TRUE(base_st.has_value());
  EXPECT_EQ(base_st->size, kBlock);
  if (bsfs) {
    // The version history is untouched: version 1 still stats.
    ASSERT_TRUE(v1_st.has_value());
    EXPECT_EQ(v1_st->size, kBlock);
  } else {
    // HDFS has no versions: the name is just an absent literal path.
    EXPECT_FALSE(v1_st.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FsInterfaceTest,
                         ::testing::Values("BSFS", "HDFS"));

// ---------------- BSFS-specific ----------------

TEST(BsfsSpecific, PrefetchMakesRecordReadsCacheHits) {
  FsWorld w;
  auto client = w.bsfs.make_client(2);
  uint64_t hits = 0, misses = 0;
  auto proc = [](fs::FsClient& c, uint64_t* h, uint64_t* m) -> sim::Task<void> {
    co_await write_file(c, "/rec", DataSpec::pattern(5, 0, kBlock * 2));
    auto reader = co_await c.open("/rec");
    // 4 KB-style sequential record reads (here 256 B against 4 KB blocks).
    for (uint64_t off = 0; off < kBlock * 2; off += 256) {
      co_await reader->read(off, 256);
    }
    auto* br = static_cast<bsfs::BsfsReader*>(reader.get());
    *h = br->cache_hits();
    *m = br->cache_misses();
  };
  w.sim.spawn(proc(*client, &hits, &misses));
  w.sim.run();
  EXPECT_EQ(misses, 2u);  // one prefetch per block
  EXPECT_EQ(hits, 30u);   // every other record served from cache
}

TEST(BsfsSpecific, WriteBehindCommitsWholeBlocks) {
  FsWorld w;
  auto client = w.bsfs.make_client(2);
  auto proc = [](fs::FsClient& c) -> sim::Task<void> {
    auto writer = co_await c.create("/wb");
    for (int i = 0; i < 32; ++i) {
      co_await writer->write(DataSpec::pattern(1, i * 256, 256));  // 8 KB total
    }
    co_await writer->close();
  };
  w.sim.spawn(proc(*client));
  w.sim.run();
  // 8 KB over 4 KB blocks = 2 appends = 2 published versions of the blob.
  EXPECT_EQ(w.blobs.version_manager().published_version(1), 2u);
}

TEST(BsfsSpecific, AppendReopensFile) {
  FsWorld w;
  auto client = w.bsfs.make_client(2);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    co_await write_file(c, "/app", DataSpec::pattern(7, 0, kBlock));
    auto writer = co_await c.append("/app");
    if (!writer) co_return;
    co_await writer->write(DataSpec::pattern(7, kBlock, kBlock));
    co_await writer->close();
    auto got = co_await read_file(c, "/app");
    *out = got.has_value() && DataSpec::from_bytes(*got).content_equals(
                                  DataSpec::pattern(7, 0, 2 * kBlock));
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST(BsfsSpecific, UnalignedAppendsReadModifyWriteTheTail) {
  // Appending to a file whose size is mid-page must preserve the old tail
  // byte-exactly (the writer re-writes the short final page).
  FsWorld w;
  auto client = w.bsfs.make_client(2);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    co_await write_file(c, "/raw", DataSpec::from_string("hello"));
    for (int round = 0; round < 3; ++round) {
      auto writer = co_await c.append("/raw");
      if (!writer) co_return;
      co_await writer->write(DataSpec::from_string(" again"));
      co_await writer->close();
    }
    auto got = co_await read_file(c, "/raw");
    *out = got.has_value() &&
           std::string(got->begin(), got->end()) == "hello again again again";
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST(BsfsSpecific, UnalignedAppendAcrossPageBoundary) {
  FsWorld w;
  auto client = w.bsfs.make_client(1);
  bool ok = false;
  auto proc = [](fs::FsClient& c, bool* out) -> sim::Task<void> {
    // First write ends mid-page; the append spans several pages and blocks.
    auto head = DataSpec::pattern(50, 0, kPage + 37);
    co_await write_file(c, "/x", head);
    auto writer = co_await c.append("/x");
    if (!writer) co_return;
    auto tail = DataSpec::pattern(50, kPage + 37, kBlock * 2 + 11);
    co_await writer->write(tail);
    co_await writer->close();
    auto got = co_await read_file(c, "/x");
    *out = got.has_value() &&
           DataSpec::from_bytes(*got).content_equals(
               DataSpec::pattern(50, 0, kPage + 37 + kBlock * 2 + 11));
  };
  w.sim.spawn(proc(*client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST(BsfsSpecific, ConcurrentSharedAppendersNeverOverwrite) {
  // The §V primitive behind OutputMode::kSharedAppend: many writers hold
  // append_shared() writers on ONE file at once, each appending a whole
  // block. Every block must land exactly once — the version manager
  // assigns disjoint ranges, so no interleaving may lose or duplicate a
  // writer's data (the plain append() RMW path would).
  constexpr int kWriters = 6;
  FsWorld w;
  auto setup = w.bsfs.make_client(0);
  auto seed_file = [](fs::FsClient& c) -> sim::Task<void> {
    auto writer = co_await c.create("/shared");
    co_await writer->close();
  };
  w.sim.spawn(seed_file(*setup));
  w.sim.run();

  std::vector<std::unique_ptr<fs::FsClient>> clients;
  for (int i = 0; i < kWriters; ++i) {
    clients.push_back(w.bsfs.make_client(1 + i));
  }
  auto appender = [](fs::FsClient& c, uint64_t seed) -> sim::Task<void> {
    auto writer = co_await c.append_shared("/shared");
    if (writer == nullptr) co_return;  // asserted via the final size check
    co_await writer->write(DataSpec::pattern(seed, 0, kBlock));
    co_await writer->close();
  };
  for (int i = 0; i < kWriters; ++i) {
    w.sim.spawn(appender(*clients[i], 100 + i));
  }
  w.sim.run();

  std::optional<Bytes> all;
  auto read_back = [](fs::FsClient& c, std::optional<Bytes>* out)
      -> sim::Task<void> { *out = co_await read_file(c, "/shared"); };
  w.sim.spawn(read_back(*setup, &all));
  w.sim.run();
  ASSERT_TRUE(all.has_value());
  ASSERT_EQ(all->size(), kWriters * kBlock);
  // Each writer's block appears exactly once, intact.
  std::set<uint64_t> seen;
  for (int b = 0; b < kWriters; ++b) {
    const uint64_t base = static_cast<uint64_t>(b) * kBlock;
    uint64_t matched = 0;
    for (int i = 0; i < kWriters; ++i) {
      const uint64_t seed = 100 + i;
      bool match = true;
      for (uint64_t off = 0; off < kBlock && match; off += 97) {
        match = (*all)[base + off] == pattern_byte(seed, off);
      }
      if (match) {
        matched = seed;
        break;
      }
    }
    ASSERT_NE(matched, 0u) << "block " << b << " matches no writer";
    EXPECT_TRUE(seen.insert(matched).second)
        << "writer " << matched << " appended twice";
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kWriters));
}

TEST(BsfsSpecific, SnapshotReadersSeeOldVersion) {
  FsWorld w;
  auto client_ptr = w.bsfs.make_client(2);
  auto* client = static_cast<bsfs::BsfsClient*>(client_ptr.get());
  bool ok = false;
  auto proc = [](FsWorld& world, bsfs::BsfsClient& c, bool* out) -> sim::Task<void> {
    co_await write_file(c, "/versioned", DataSpec::pattern(1, 0, kBlock));
    const blob::Version snap = co_await world.bsfs.snapshot(c.node(), "/versioned");
    // Append more data after the snapshot.
    auto writer = co_await c.append("/versioned");
    co_await writer->write(DataSpec::pattern(2, 0, kBlock));
    co_await writer->close();
    // A reader pinned at the snapshot sees only the first block.
    auto old_reader = co_await c.open_at_version("/versioned", snap);
    auto new_reader = co_await c.open("/versioned");
    if (!old_reader || !new_reader) co_return;
    *out = old_reader->size() == kBlock && new_reader->size() == 2 * kBlock;
    auto old_data = co_await old_reader->read(0, old_reader->size());
    *out = *out && old_data.content_equals(DataSpec::pattern(1, 0, kBlock));
  };
  w.sim.spawn(proc(w, *client, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST(BsfsSpecific, VersionedPathRoundTrip) {
  // versioned_path / parse_versioned_path must round-trip for every legal
  // base path — including bases whose components already contain "@v".
  const std::string bases[] = {"/a", "/deep/dir/file", "/a@v1/b", "/x@vz",
                               "/f@v2", "/trailing@v"};
  const blob::Version versions[] = {1, 9, 42, 1000000};
  for (const std::string& base : bases) {
    for (blob::Version v : versions) {
      const auto [parsed_base, parsed_v] =
          bsfs::parse_versioned_path(bsfs::versioned_path(base, v));
      EXPECT_EQ(parsed_base, base) << base << " @v" << v;
      EXPECT_EQ(parsed_v, v) << base << " @v" << v;
    }
  }
  // Names that are NOT version syntax parse as plain paths.
  for (const char* plain :
       {"/a@v1/b", "/x@v", "/x@v12y", "/x@", "/plain", "@v"}) {
    const auto [base, v] = bsfs::parse_versioned_path(plain);
    EXPECT_EQ(base, plain);
    EXPECT_EQ(v, blob::kNoVersion);
  }
}

TEST(BsfsSpecific, VersionedStatReportsHistoricalSizes) {
  FsWorld w;
  auto client = w.bsfs.make_client(1);
  std::optional<fs::FileStat> v1, v2, missing;
  auto proc = [](fs::FsClient& c, std::optional<fs::FileStat>* a,
                 std::optional<fs::FileStat>* b,
                 std::optional<fs::FileStat>* m) -> sim::Task<void> {
    co_await write_file(c, "/grow", DataSpec::pattern(1, 0, kBlock));
    auto writer = co_await c.append("/grow");
    co_await writer->write(DataSpec::pattern(2, 0, kBlock));
    co_await writer->close();
    *a = co_await c.stat("/grow@v1");
    *b = co_await c.stat("/grow@v2");
    *m = co_await c.stat("/grow@v99");
  };
  w.sim.spawn(proc(*client, &v1, &v2, &missing));
  w.sim.run();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->size, kBlock);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->size, 2 * kBlock);
  EXPECT_FALSE(missing.has_value());
}

TEST(BsfsSpecific, CacheDisabledGoesStraightToBlobSeer) {
  FsWorld w;
  bsfs::BsfsConfig cfg = bsfs_config();
  cfg.enable_cache = false;
  bsfs::NamespaceManager ns2(w.sim, w.net, bsfs::NamespaceConfig{.node = 1});
  bsfs::Bsfs nocache(w.sim, w.net, w.blobs, ns2, cfg);
  auto client = nocache.make_client(2);
  uint64_t misses = 0;
  auto proc = [](fs::FsClient& c, uint64_t* m) -> sim::Task<void> {
    co_await write_file(c, "/nc", DataSpec::pattern(5, 0, kBlock));
    auto reader = co_await c.open("/nc");
    for (uint64_t off = 0; off < kBlock; off += 256) {
      co_await reader->read(off, 256);
    }
    *m = static_cast<bsfs::BsfsReader*>(reader.get())->cache_misses();
  };
  w.sim.spawn(proc(*client, &misses));
  w.sim.run();
  EXPECT_EQ(misses, 16u);  // every record read goes to the blob store
}

// ---------------- HDFS-specific ----------------

TEST(HdfsSpecific, AppendIsUnsupported) {
  FsWorld w;
  auto client = w.hdfs.make_client(0);
  bool null_append = false;
  bool null_shared = false;
  auto proc = [](fs::FsClient& c, bool* out, bool* shared) -> sim::Task<void> {
    co_await write_file(c, "/f", DataSpec::from_string("data"));
    auto writer = co_await c.append("/f");
    *out = writer == nullptr;
    auto shared_writer = co_await c.append_shared("/f");
    *shared = shared_writer == nullptr;
  };
  w.sim.spawn(proc(*client, &null_append, &null_shared));
  w.sim.run();
  EXPECT_TRUE(null_append);
  EXPECT_TRUE(null_shared);
}

TEST(HdfsSpecific, SingleWriterLease) {
  FsWorld w;
  auto c1 = w.hdfs.make_client(0);
  auto c2 = w.hdfs.make_client(1);
  bool second_create_failed = false;
  auto proc = [](fs::FsClient& a, fs::FsClient& b, bool* out) -> sim::Task<void> {
    auto w1 = co_await a.create("/exclusive");
    auto w2 = co_await b.create("/exclusive");
    *out = w1 != nullptr && w2 == nullptr;
    co_await w1->write(DataSpec::from_string("x"));
    co_await w1->close();
  };
  w.sim.spawn(proc(*c1, *c2, &second_create_failed));
  w.sim.run();
  EXPECT_TRUE(second_create_failed);
}

TEST(HdfsSpecific, PlacementFollowsPaperPolicy) {
  // First replica local, second in the same rack, third in a different rack.
  FsWorld w;
  hdfs::HdfsConfig cfg = hdfs_config();
  cfg.namenode.replication = 3;
  cfg.namenode.node = 15;
  hdfs::Hdfs hdfs3(w.sim, w.net, cfg);
  auto client = hdfs3.make_client(5);
  std::vector<fs::BlockLocation> locs;
  auto proc = [](fs::FsClient& c,
                 std::vector<fs::BlockLocation>* out) -> sim::Task<void> {
    co_await write_file(c, "/replicated", DataSpec::pattern(1, 0, kBlock * 3));
    *out = co_await c.locations("/replicated", 0, kBlock * 3);
  };
  w.sim.spawn(proc(*client, &locs));
  w.sim.run();
  ASSERT_EQ(locs.size(), 3u);
  const auto& ncfg = w.net.config();
  for (const auto& l : locs) {
    ASSERT_EQ(l.hosts.size(), 3u);
    EXPECT_EQ(l.hosts[0], 5u);  // writer's node
    EXPECT_EQ(ncfg.rack_of(l.hosts[1]), ncfg.rack_of(5));  // same rack
    EXPECT_NE(ncfg.rack_of(l.hosts[2]), ncfg.rack_of(5));  // different rack
    std::set<net::NodeId> uniq(l.hosts.begin(), l.hosts.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(HdfsSpecific, AllReplicasHoldTheBlock) {
  FsWorld w;
  hdfs::HdfsConfig cfg = hdfs_config();
  cfg.namenode.replication = 3;
  cfg.namenode.node = 15;
  hdfs::Hdfs hdfs3(w.sim, w.net, cfg);
  auto client = hdfs3.make_client(4);
  std::vector<fs::BlockLocation> locs;
  auto proc = [](fs::FsClient& c,
                 std::vector<fs::BlockLocation>* out) -> sim::Task<void> {
    co_await write_file(c, "/f", DataSpec::pattern(1, 0, kBlock));
    *out = co_await c.locations("/f", 0, kBlock);
  };
  w.sim.spawn(proc(*client, &locs));
  w.sim.run();
  ASSERT_EQ(locs.size(), 1u);
  // Every named replica's datanode actually stores the (only) block.
  for (net::NodeId host : locs[0].hosts) {
    EXPECT_TRUE(hdfs3.datanode_on(host).has_block(1))
        << "host " << host << " missing block";
  }
}

TEST(HdfsSpecific, WriteThroughputIsDiskBound) {
  // With replication 1 and a local datanode, a 1 GB-style write must take
  // ~size/disk_write_bps — the synchronous write-through the paper's write
  // benchmark exposes.
  sim::Simulator sim;
  net::ClusterConfig ncfg = test_net();
  ncfg.disk_write_bps = 10e6;
  ncfg.disk_seek_s = 0;
  net::Network net(sim, ncfg);
  hdfs::HdfsConfig cfg;
  cfg.namenode.block_size = 4 << 20;
  cfg.namenode.replication = 1;
  cfg.namenode.node = 15;
  hdfs::Hdfs h(sim, net, cfg);
  auto client = h.make_client(3);
  auto proc = [](fs::FsClient& c) -> sim::Task<void> {
    auto writer = co_await c.create("/big");
    co_await writer->write(DataSpec::pattern(1, 0, 40 << 20));
    co_await writer->close();
  };
  sim.spawn(proc(*client));
  sim.run();
  EXPECT_GE(sim.now(), 4.0);  // 40 MB at 10 MB/s disk
  EXPECT_LT(sim.now(), 5.5);
}

TEST(HdfsSpecific, NameNodeQueuesUnderLoad) {
  FsWorld w;
  hdfs::HdfsConfig cfg = hdfs_config();
  cfg.namenode.service_time_s = 10e-3;  // exaggerated to expose queueing
  cfg.namenode.node = 15;
  hdfs::Hdfs slow(w.sim, w.net, cfg);
  auto proc = [](fs::FileSystem& f, int id) -> sim::Task<void> {
    auto client = f.make_client(static_cast<net::NodeId>(id));
    auto writer = co_await client->create("/f" + std::to_string(id));
    co_await writer->write(DataSpec::pattern(1, 0, 64));
    co_await writer->close();
  };
  for (int i = 0; i < 10; ++i) w.sim.spawn(proc(slow, i));
  w.sim.run();
  // 10 clients × 4 serialized NameNode ops × 10 ms each ≥ 0.4 s total span.
  EXPECT_GE(w.sim.now(), 0.4);
}

}  // namespace
}  // namespace bs
