// Tests for version garbage collection: pruned versions become unreadable,
// kept versions stay byte-exact, and exactly the unreachable page replicas
// are reclaimed (checked against a reference-model computation).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "blob/cluster.h"
#include "blob/gc.h"
#include "common/rng.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::blob {
namespace {

constexpr uint64_t kPage = 64;

net::ClusterConfig test_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.nodes_per_rack = 4;
  return cfg;
}

struct GcWorld {
  sim::Simulator sim;
  net::Network net;
  BlobSeerCluster cluster;

  GcWorld() : net(sim, test_net()), cluster(sim, net, {}) {}

  uint64_t total_pages_stored() const {
    uint64_t n = 0;
    for (const auto& p : cluster.all_providers()) n += p->store().size();
    return n;
  }
};

DataSpec marked(uint8_t m, uint64_t n) {
  return DataSpec::from_bytes(Bytes(n, m));
}

TEST(Gc, OverwrittenPagesAreReclaimed) {
  GcWorld w;
  auto client = w.cluster.make_client(0);
  BlobId blob = 0;
  auto setup = [](BlobClient& c, BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage);
    *out = desc.id;
    // Five full overwrites of the same page.
    for (int i = 0; i < 5; ++i) {
      co_await c.write(desc.id, 0, marked(static_cast<uint8_t>('a' + i), kPage));
    }
  };
  w.sim.spawn(setup(*client, &blob));
  w.sim.run();
  EXPECT_EQ(w.total_pages_stored(), 5u);

  GcStats stats;
  auto gc = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, /*keep_from=*/5);
  };
  w.sim.spawn(gc(&w, blob, &stats));
  w.sim.run();

  // Versions 1..4 each owned one page replica, all overwritten by v5.
  EXPECT_EQ(stats.page_replicas_deleted, 4u);
  EXPECT_EQ(stats.bytes_reclaimed, 4 * kPage);
  EXPECT_EQ(w.total_pages_stored(), 1u);

  // v5 still reads exactly; v4 is gone.
  bool v5_ok = false, v4_gone = false;
  auto verify = [](GcWorld* world, BlobClient& c, BlobId b, bool* ok5,
                   bool* gone4) -> sim::Task<void> {
    auto data = co_await c.read(b, 5, 0, kPage);
    *ok5 = data.materialize() == Bytes(kPage, 'e');
    auto info = co_await world->cluster.version_manager().version_info(0, b, 4);
    *gone4 = !info.has_value();
  };
  w.sim.spawn(verify(&w, *client, blob, &v5_ok, &v4_gone));
  w.sim.run();
  EXPECT_TRUE(v5_ok);
  EXPECT_TRUE(v4_gone);
}

TEST(Gc, AppendOnlyHistoryKeepsAllPages) {
  GcWorld w;
  auto client = w.cluster.make_client(0);
  BlobId blob = 0;
  auto setup = [](BlobClient& c, BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage);
    *out = desc.id;
    for (int i = 0; i < 6; ++i) {
      co_await c.append(desc.id, marked(static_cast<uint8_t>('a' + i), kPage));
    }
  };
  w.sim.spawn(setup(*client, &blob));
  w.sim.run();

  GcStats stats;
  auto gc = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, 6);
  };
  w.sim.spawn(gc(&w, blob, &stats));
  w.sim.run();
  // Appends never overwrite: every page is still owned by its writer.
  EXPECT_EQ(stats.page_replicas_deleted, 0u);
  EXPECT_EQ(w.total_pages_stored(), 6u);
  // But superseded tree roots/inner nodes of old versions were dropped.
  EXPECT_GT(stats.meta_nodes_deleted, 0u);

  // The surviving blob reads back in full.
  bool ok = false;
  auto verify = [](BlobClient& c, BlobId b, bool* out) -> sim::Task<void> {
    auto data = co_await c.read(b, kNoVersion, 0, 6 * kPage);
    Bytes want;
    for (int i = 0; i < 6; ++i) want.insert(want.end(), kPage, 'a' + i);
    *out = data.materialize() == want;
  };
  w.sim.spawn(verify(*client, blob, &ok));
  w.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Gc, IsIdempotent) {
  GcWorld w;
  auto client = w.cluster.make_client(0);
  BlobId blob = 0;
  auto setup = [](BlobClient& c, BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage);
    *out = desc.id;
    for (int i = 0; i < 4; ++i) co_await c.write(desc.id, 0, marked('x', kPage));
  };
  w.sim.spawn(setup(*client, &blob));
  w.sim.run();
  GcStats first{}, second{};
  auto gc = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, 4);
  };
  w.sim.spawn(gc(&w, blob, &first));
  w.sim.run();
  w.sim.spawn(gc(&w, blob, &second));
  w.sim.run();
  EXPECT_EQ(first.page_replicas_deleted, 3u);
  EXPECT_EQ(second.page_replicas_deleted, 0u);
  EXPECT_EQ(second.meta_nodes_deleted, 0u);
}

TEST(Gc, PinCapLimitsThePruneAtFlipTime) {
  // The pin_cap callback is evaluated by the version manager atomically
  // with the watermark flip: a snapshot pin visible at that instant caps
  // the prune below the requested keep_from, the capped versions stay
  // readable, and the sweep reclaims only below the ACTUAL watermark.
  GcWorld w;
  auto client = w.cluster.make_client(0);
  BlobId blob = 0;
  auto setup = [](BlobClient& c, BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage);
    *out = desc.id;
    for (int i = 0; i < 5; ++i) {
      co_await c.write(desc.id, 0, marked(static_cast<uint8_t>('a' + i), kPage));
    }
  };
  w.sim.spawn(setup(*client, &blob));
  w.sim.run();

  GcStats stats;
  auto gc = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, /*keep_from=*/5,
                                    /*pin_cap=*/[] { return Version(3); });
  };
  w.sim.spawn(gc(&w, blob, &stats));
  w.sim.run();
  EXPECT_EQ(stats.pruned_below, 3u);
  EXPECT_EQ(stats.page_replicas_deleted, 2u);  // v1, v2 — not v3/v4
  EXPECT_EQ(w.total_pages_stored(), 3u);

  // v3 (the pinned floor) still reads; v2 is gone.
  bool v3_ok = false, v2_gone = false;
  auto verify = [](GcWorld* world, BlobClient& c, BlobId b, bool* ok3,
                   bool* gone2) -> sim::Task<void> {
    auto data = co_await c.read(b, 3, 0, kPage);
    *ok3 = data.materialize() == Bytes(kPage, 'c');
    auto info = co_await world->cluster.version_manager().version_info(0, b, 2);
    *gone2 = !info.has_value();
  };
  w.sim.spawn(verify(&w, *client, blob, &v3_ok, &v2_gone));
  w.sim.run();
  EXPECT_TRUE(v3_ok);
  EXPECT_TRUE(v2_gone);

  // With the pin gone, the same request prunes the rest.
  GcStats rest;
  auto gc2 = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, 5);
  };
  w.sim.spawn(gc2(&w, blob, &rest));
  w.sim.run();
  EXPECT_EQ(rest.pruned_below, 5u);
  EXPECT_EQ(rest.page_replicas_deleted, 2u);  // v3, v4
  EXPECT_EQ(w.total_pages_stored(), 1u);
}

TEST(Gc, ReclaimsAllReplicasOfReplicatedPages) {
  GcWorld w;
  auto client = w.cluster.make_client(0);
  BlobId blob = 0;
  auto setup = [](BlobClient& c, BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage, /*replication=*/3);
    *out = desc.id;
    co_await c.write(desc.id, 0, marked('a', kPage));
    co_await c.write(desc.id, 0, marked('b', kPage));
  };
  w.sim.spawn(setup(*client, &blob));
  w.sim.run();
  EXPECT_EQ(w.total_pages_stored(), 6u);  // 2 versions x 3 replicas
  GcStats stats;
  auto gc = [](GcWorld* world, BlobId b, GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, 2);
  };
  w.sim.spawn(gc(&w, blob, &stats));
  w.sim.run();
  EXPECT_EQ(stats.page_replicas_deleted, 3u);
  EXPECT_EQ(w.total_pages_stored(), 3u);
}

// Property test: random write/append workload, GC at a random watermark;
// expected reclaimed page count is computed from the history oracle and
// every kept version must still read back exactly as the reference replay.
class GcOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(GcOracleTest, ReclaimsExactlyTheUnreachablePages) {
  Rng rng(GetParam());
  GcWorld w;
  auto client = w.cluster.make_client(rng.below(16));

  struct Op {
    uint64_t offset;
    uint64_t len;
    uint64_t seed;
  };
  std::vector<Op> ops;
  uint64_t size = 0;
  const int num_ops = 10;
  for (int i = 0; i < num_ops; ++i) {
    Op op;
    op.seed = 500 + i;
    if (size == 0 || rng.chance(0.4)) {
      op.offset = size;
      op.len = kPage * (1 + rng.below(3));
    } else {
      const uint64_t pages = size / kPage;
      const uint64_t first = rng.below(pages);
      op.offset = first * kPage;
      op.len = kPage * (1 + rng.below(pages - first));
    }
    size = std::max(size, op.offset + op.len);
    ops.push_back(op);
  }

  BlobId blob = 0;
  auto run_ops = [](BlobClient& c, const std::vector<Op>& the_ops,
                    BlobId* out) -> sim::Task<void> {
    auto desc = co_await c.create(kPage);
    *out = desc.id;
    for (const auto& op : the_ops) {
      co_await c.write(desc.id, op.offset, DataSpec::pattern(op.seed, 0, op.len));
    }
  };
  w.sim.spawn(run_ops(*client, ops, &blob));
  w.sim.run();

  const Version keep_from = 1 + static_cast<Version>(rng.below(num_ops));

  // Oracle: a page replica (p, u) with u < keep_from is dead iff some later
  // version w in (u, keep_from] also wrote page p.
  uint64_t expected_dead = 0;
  for (Version u = 1; u < keep_from; ++u) {
    const Op& op = ops[u - 1];
    for (uint64_t p = op.offset / kPage; p < (op.offset + op.len) / kPage +
             ((op.offset + op.len) % kPage ? 1 : 0); ++p) {
      bool overwritten = false;
      for (Version v = u + 1; v <= keep_from; ++v) {
        const Op& later = ops[v - 1];
        const uint64_t lo = later.offset / kPage;
        const uint64_t hi = (later.offset + later.len + kPage - 1) / kPage;
        if (p >= lo && p < hi) {
          overwritten = true;
          break;
        }
      }
      if (overwritten) ++expected_dead;
    }
  }

  const uint64_t before = w.total_pages_stored();
  GcStats stats;
  auto gc = [](GcWorld* world, BlobId b, Version keep,
               GcStats* out) -> sim::Task<void> {
    *out = co_await collect_garbage(world->cluster, 0, b, keep);
  };
  w.sim.spawn(gc(&w, blob, keep_from, &stats));
  w.sim.run();
  EXPECT_EQ(stats.page_replicas_deleted, expected_dead);
  EXPECT_EQ(w.total_pages_stored(), before - expected_dead);

  // Every kept version still matches the reference replay.
  Bytes ref;
  int mismatches = 0;
  auto verify = [](BlobClient& c, BlobId b, Version v, Bytes expect,
                   int* bad) -> sim::Task<void> {
    auto got = co_await c.read(b, v, 0, expect.size());
    if (got.materialize() != expect) ++*bad;
  };
  for (Version v = 1; v <= static_cast<Version>(num_ops); ++v) {
    const Op& op = ops[v - 1];
    if (ref.size() < op.offset + op.len) ref.resize(op.offset + op.len, 0);
    auto bytes = DataSpec::pattern(op.seed, 0, op.len).materialize();
    std::copy(bytes.begin(), bytes.end(),
              ref.begin() + static_cast<ptrdiff_t>(op.offset));
    if (v < keep_from) continue;  // pruned
    w.sim.spawn(verify(*client, blob, v, ref, &mismatches));
    w.sim.run();
  }
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcOracleTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace bs::blob
