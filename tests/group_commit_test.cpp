// GroupCommitJournal unit battery: the batch-trigger matrix (count fires
// first, timer fires first, explicit sync()), the ack contract under power
// loss (crash before the ack loses the whole batch, crash after the ack
// loses nothing — including a crash that catches the batch on the platter
// path), and WAL replay after a torn tail mid-batch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/journal.h"
#include "kv/kvstore.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::kv {
namespace {

constexpr net::NodeId kNode = 1;
constexpr uint64_t kRecordLen = 1000;

net::ClusterConfig tiny_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.nodes_per_rack = 2;
  return cfg;
}

// A world with one journal-owning storage node.
struct GcWorld {
  sim::Simulator sim;
  net::Network net;

  GcWorld() : net(sim, tiny_net()) {}

  std::unique_ptr<GroupCommitJournal> journal(DurabilityPolicy policy) {
    return std::make_unique<GroupCommitJournal>(
        sim, net, kNode, std::make_unique<MemoryJournal>(), policy);
  }
};

struct Ack {
  int result = 0;  // 0 = unresolved, 1 = acked, 2 = refused
  double at = -1;  // sim time the ack resolved
};

sim::Task<void> one_append(sim::Simulator* sim, GroupCommitJournal* j,
                           uint64_t tag, Ack* ack) {
  const bool ok = co_await j->append_acked(Bytes(kRecordLen, static_cast<uint8_t>(tag)));
  ack->result = ok ? 1 : 2;
  ack->at = sim->now();
}

sim::Task<void> crash_at(sim::Simulator* sim, GcWorld* w,
                         GroupCommitJournal* j, double at) {
  co_await sim->delay(at);
  w->net.set_node_up(kNode, false);  // bumps the incarnation
  j->power_loss();
}

TEST(GroupCommit, CountTriggerFiresBeforeTimer) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(4, /*max_delay_s=*/10.0));
  std::vector<Ack> acks(4);
  for (uint64_t i = 0; i < 4; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.run();
  for (const auto& a : acks) {
    EXPECT_EQ(a.result, 1);
    // Acked when the 4th record closed the batch — long before the 10 s
    // timer, paying one disk positioning overhead for all four.
    EXPECT_LT(a.at, 1.0);
  }
  EXPECT_EQ(j->batches_synced(), 1u);
  EXPECT_EQ(j->records_synced(), 4u);
  EXPECT_EQ(j->inner().record_count(), 4u);
  EXPECT_EQ(j->unsynced_records(), 0u);
}

TEST(GroupCommit, TimerTriggerFiresBeforeCount) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(100, /*max_delay_s=*/0.05));
  std::vector<Ack> acks(3);
  for (uint64_t i = 0; i < 3; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.run();
  for (const auto& a : acks) {
    EXPECT_EQ(a.result, 1);
    // The batch never filled; the max_delay timer flushed it.
    EXPECT_GE(a.at, 0.05);
    EXPECT_LT(a.at, 0.1);
  }
  EXPECT_EQ(j->batches_synced(), 1u);
  EXPECT_EQ(j->inner().record_count(), 3u);
}

sim::Task<void> sync_now(GroupCommitJournal* j, Ack* ack, sim::Simulator* sim) {
  const bool ok = co_await j->sync();
  ack->result = ok ? 1 : 2;
  ack->at = sim->now();
}

TEST(GroupCommit, ExplicitSyncFlushesEarly) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(100, /*max_delay_s=*/10.0));
  // Plain append() buffers without blocking; neither trigger is close.
  for (uint64_t i = 0; i < 3; ++i) j->append(Bytes(kRecordLen, static_cast<uint8_t>(i)));
  EXPECT_EQ(j->inner().record_count(), 0u);
  EXPECT_EQ(j->unsynced_records(), 3u);
  Ack ack;
  w.sim.spawn(sync_now(j.get(), &ack, &w.sim));
  w.sim.run();
  EXPECT_EQ(ack.result, 1);
  EXPECT_LT(ack.at, 1.0);  // did not wait out the 10 s timer
  EXPECT_EQ(j->batches_synced(), 1u);
  EXPECT_EQ(j->inner().record_count(), 3u);
  EXPECT_EQ(j->unsynced_records(), 0u);
}

TEST(GroupCommit, ImmediateSyncsEveryRecordAlone) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::immediate());
  std::vector<Ack> acks(3);
  for (uint64_t i = 0; i < 3; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.run();
  for (const auto& a : acks) EXPECT_EQ(a.result, 1);
  EXPECT_EQ(j->batches_synced(), 3u);  // one batch per record
  EXPECT_EQ(j->inner().record_count(), 3u);
}

TEST(GroupCommit, NoneAcksInstantlyAndSyncsLazily) {
  GcWorld w;
  DurabilityPolicy policy = DurabilityPolicy::none();
  policy.max_delay_s = 0.05;  // flush cadence; irrelevant to the acks
  auto j = w.journal(policy);
  std::vector<Ack> acks(3);
  for (uint64_t i = 0; i < 3; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.run();
  for (const auto& a : acks) {
    EXPECT_EQ(a.result, 1);
    EXPECT_EQ(a.at, 0.0);  // acked on arrival, before any disk time
  }
  // ...but the flush cadence still drove everything to the platter.
  EXPECT_EQ(j->inner().record_count(), 3u);
}

TEST(GroupCommit, CrashBeforeAckLosesTheWholeBatch) {
  GcWorld w;
  // Neither trigger can fire: the batch is still open when power dies.
  auto j = w.journal(DurabilityPolicy::batched(8, /*max_delay_s=*/10.0));
  std::vector<Ack> acks(4);
  for (uint64_t i = 0; i < 4; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.spawn(crash_at(&w.sim, &w, j.get(), 0.001));
  w.sim.run();
  for (const auto& a : acks) EXPECT_EQ(a.result, 2);  // refused, not lied to
  EXPECT_EQ(j->inner().record_count(), 0u);
  EXPECT_EQ(j->bytes_lost(), 4 * kRecordLen);
  // No ack was issued, so no *acked* byte was lost: the contract held.
  EXPECT_EQ(j->acked_bytes_lost(), 0u);
  EXPECT_EQ(j->unsynced_records(), 0u);  // the window was fully accounted
}

TEST(GroupCommit, CrashMidDiskWriteLosesTheInflightBatch) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(2, /*max_delay_s=*/10.0));
  std::vector<Ack> acks(2);
  for (uint64_t i = 0; i < 2; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  // The pair closes the batch at t=0 and the disk write takes ~2 ms; the
  // power loss at 1 ms catches it on the platter path. The incarnation bump
  // makes try_disk_write report failure at completion.
  w.sim.spawn(crash_at(&w.sim, &w, j.get(), 0.001));
  w.sim.run();
  for (const auto& a : acks) EXPECT_EQ(a.result, 2);
  EXPECT_EQ(j->inner().record_count(), 0u);
  EXPECT_EQ(j->bytes_lost(), 2 * kRecordLen);
  EXPECT_EQ(j->acked_bytes_lost(), 0u);
}

TEST(GroupCommit, CrashAfterAckLosesNothing) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(4, /*max_delay_s=*/10.0));
  std::vector<Ack> acks(4);
  for (uint64_t i = 0; i < 4; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  // Well after the count trigger synced the batch (~2 ms).
  w.sim.spawn(crash_at(&w.sim, &w, j.get(), 1.0));
  w.sim.run();
  for (const auto& a : acks) {
    EXPECT_EQ(a.result, 1);
    EXPECT_LT(a.at, 1.0);
  }
  EXPECT_EQ(j->bytes_lost(), 0u);
  EXPECT_EQ(j->acked_bytes_lost(), 0u);
  EXPECT_EQ(j->inner().record_count(), 4u);
  // Replay sees all four: what was acked survived the power loss.
  uint64_t replayed = 0;
  j->scan([&](const Bytes&) { ++replayed; });
  EXPECT_EQ(replayed, 4u);
}

TEST(GroupCommit, ReplayAfterTornTailMidBatchKeepsEveryAckedRecord) {
  GcWorld w;
  auto j = w.journal(DurabilityPolicy::batched(4, /*max_delay_s=*/10.0));
  // Two full batches reach the platter and are acked.
  std::vector<Ack> acks(8);
  for (uint64_t i = 0; i < 8; ++i)
    w.sim.spawn(one_append(&w.sim, j.get(), i, &acks[i]));
  w.sim.run_until(1.0);
  for (const auto& a : acks) ASSERT_EQ(a.result, 1);
  ASSERT_EQ(j->inner().record_count(), 8u);
  // A third batch is torn mid-write by the power loss: model the torn tail
  // by appending part of it to the durable log, then cutting the log back
  // mid-batch — one of its records survives the tear, one does not.
  auto* inner = static_cast<MemoryJournal*>(&j->inner());
  inner->append(Bytes(kRecordLen, 100));
  inner->append(Bytes(kRecordLen, 101));
  inner->corrupt_tail(/*keep_records=*/9);
  // Replay: every acked record is still there, in order; the torn batch
  // contributes only its intact prefix.
  std::vector<uint8_t> tags;
  j->scan([&](const Bytes& r) { tags.push_back(r[0]); });
  ASSERT_EQ(tags.size(), 9u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(tags[i], static_cast<uint8_t>(i));
  EXPECT_EQ(tags[8], 100);
}

sim::Task<void> one_put(sim::Simulator* sim, KvStore* kv, std::string key,
                        Ack* ack) {
  const bool ok = co_await kv->put_acked(key, Bytes(kRecordLen, 7));
  ack->result = ok ? 1 : 2;
  ack->at = sim->now();
}

TEST(GroupCommit, KvStorePutAckedRidesTheBatch) {
  GcWorld w;
  auto journal = w.journal(DurabilityPolicy::batched(4, /*max_delay_s=*/10.0));
  GroupCommitJournal* j = journal.get();
  KvStore kv(std::move(journal));
  std::vector<Ack> acks(4);
  for (uint64_t i = 0; i < 4; ++i)
    w.sim.spawn(one_put(&w.sim, &kv, "k" + std::to_string(i), &acks[i]));
  w.sim.run();
  for (const auto& a : acks) {
    EXPECT_EQ(a.result, 1);
    EXPECT_LT(a.at, 1.0);  // count trigger, not the 10 s timer
  }
  EXPECT_EQ(j->batches_synced(), 1u);
  // Write-behind read visibility: the store applied each put immediately.
  EXPECT_EQ(kv.size(), 4u);
}

TEST(GroupCommit, CheckpointSettlesPendingBatchesAsSubsumed) {
  GcWorld w;
  auto journal = w.journal(DurabilityPolicy::batched(100, /*max_delay_s=*/10.0));
  GroupCommitJournal* j = journal.get();
  KvStore kv(std::move(journal));
  for (int i = 0; i < 10; ++i) kv.put("k" + std::to_string(i), Bytes(8, 1));
  EXPECT_EQ(j->unsynced_records(), 10u);
  // checkpoint() truncates the journal and appends one snapshot record; the
  // buffered batch must be settled (subsumed), never flushed after it.
  kv.checkpoint();
  w.sim.run();
  EXPECT_EQ(j->unsynced_records(), 0u);
  EXPECT_EQ(j->bytes_lost(), 0u);
  // The durable log replays to exactly the checkpointed state.
  auto replayed = std::make_unique<MemoryJournal>();
  j->scan([&](const Bytes& r) { replayed->append(r); });
  KvStore kv2(std::move(replayed));
  EXPECT_EQ(kv2.size(), 10u);
}

}  // namespace
}  // namespace bs::kv
