// Integration tests: the paper's qualitative claims as assertions, at
// miniature scale. These are the "shape" checks the benches print at full
// scale — here they gate the build.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "fs/filesystem.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "net/network.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace bs {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

// A miniature Grid'5000: 40 storage nodes + master, calibrated like the
// paper-scale bench worlds (per-stream cap, warm caches).
net::ClusterConfig mini_cluster() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 41;
  cfg.nodes_per_rack = 8;
  cfg.per_stream_cap_bps = 0.65 * cfg.nic_bps;
  cfg.rack_uplink_bps = 4.0e9;
  return cfg;
}

struct MiniWorld {
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<blob::BlobSeerCluster> blobs;
  std::unique_ptr<bsfs::NamespaceManager> ns;
  std::unique_ptr<bsfs::Bsfs> bsfs;
  std::unique_ptr<hdfs::Hdfs> hdfs;

  MiniWorld() : net(sim, mini_cluster()) {
    std::vector<net::NodeId> storage;
    for (net::NodeId n = 1; n < mini_cluster().num_nodes; ++n) {
      storage.push_back(n);
    }
    blob::BlobSeerConfig bcfg;
    bcfg.provider_nodes = storage;
    bcfg.metadata_nodes = storage;
    blobs = std::make_unique<blob::BlobSeerCluster>(sim, net, bcfg);
    ns = std::make_unique<bsfs::NamespaceManager>(sim, net,
                                                  bsfs::NamespaceConfig{});
    bsfs::BsfsConfig fcfg;
    fcfg.block_size = 8 * kMiB;
    fcfg.page_size = 1 * kMiB;
    bsfs = std::make_unique<bsfs::Bsfs>(sim, net, *blobs, *ns, fcfg);
    hdfs::HdfsConfig hcfg;
    hcfg.namenode.node = 0;
    hcfg.namenode.block_size = 8 * kMiB;
    hdfs = std::make_unique<hdfs::Hdfs>(sim, net, hcfg, storage);
  }
};

// Runs `n` concurrent 64 MB writers against `fs`; returns mean per-client
// throughput (MB/s).
double write_throughput(MiniWorld& w, fs::FileSystem& fs, int n,
                        const std::string& tag) {
  std::vector<double> durations(n);
  auto writer_proc = [](sim::Simulator* sim, fs::FileSystem* f,
                        net::NodeId node, std::string path,
                        double* dur) -> sim::Task<void> {
    auto client = f->make_client(node);
    auto writer = co_await client->create(path);
    BS_CHECK(writer != nullptr);
    const double t0 = sim->now();
    for (int i = 0; i < 64; ++i) {
      co_await writer->write(DataSpec::pattern(1, i * kMiB, kMiB));
    }
    co_await writer->close();
    *dur = sim->now() - t0;
  };
  for (int i = 0; i < n; ++i) {
    w.sim.spawn(writer_proc(&w.sim, &fs, 1 + (i % 40),
                            "/" + tag + "/f" + std::to_string(i),
                            &durations[i]));
  }
  w.sim.run();
  double sum = 0;
  for (double d : durations) sum += 64.0 / d;
  return sum / n;
}

double read_throughput(MiniWorld& w, fs::FileSystem& fs, int n,
                       const std::string& tag) {
  // Stage from the master (as an external loader).
  auto stage = [](fs::FileSystem* f, std::string path) -> sim::Task<void> {
    auto client = f->make_client(0);
    auto writer = co_await client->create(path);
    for (int i = 0; i < 64; ++i) {
      co_await writer->write(DataSpec::pattern(2, i * kMiB, kMiB));
    }
    co_await writer->close();
  };
  {
    std::vector<sim::Task<void>> puts;
    for (int i = 0; i < n; ++i) {
      puts.push_back(stage(&fs, "/" + tag + "/in" + std::to_string(i)));
    }
    w.sim.spawn(sim::when_all_limited(w.sim, std::move(puts), 8));
    w.sim.run();
  }
  std::vector<double> durations(n);
  auto reader_proc = [](sim::Simulator* sim, fs::FileSystem* f,
                        net::NodeId node, std::string path,
                        double* dur) -> sim::Task<void> {
    auto client = f->make_client(node);
    auto reader = co_await client->open(path);
    BS_CHECK(reader != nullptr);
    const double t0 = sim->now();
    for (int i = 0; i < 64; ++i) {
      co_await reader->read(static_cast<uint64_t>(i) * kMiB, kMiB);
    }
    *dur = sim->now() - t0;
  };
  for (int i = 0; i < n; ++i) {
    w.sim.spawn(reader_proc(&w.sim, &fs, 1 + (i % 40),
                            "/" + tag + "/in" + std::to_string(i),
                            &durations[i]));
  }
  w.sim.run();
  double sum = 0;
  for (double d : durations) sum += 64.0 / d;
  return sum / n;
}

TEST(PaperClaims, BsfsBeatsHdfsOnConcurrentWrites) {
  MiniWorld w;
  const double bsfs_tput = write_throughput(w, *w.bsfs, 32, "b");
  const double hdfs_tput = write_throughput(w, *w.hdfs, 32, "h");
  EXPECT_GT(bsfs_tput, hdfs_tput * 1.2)
      << "BSFS=" << bsfs_tput << " HDFS=" << hdfs_tput;
}

TEST(PaperClaims, BsfsBeatsHdfsOnConcurrentReads) {
  MiniWorld w;
  const double bsfs_tput = read_throughput(w, *w.bsfs, 32, "b");
  const double hdfs_tput = read_throughput(w, *w.hdfs, 32, "h");
  EXPECT_GT(bsfs_tput, hdfs_tput * 1.2)
      << "BSFS=" << bsfs_tput << " HDFS=" << hdfs_tput;
}

TEST(PaperClaims, BsfsSustainsWriteThroughputAsClientsGrow) {
  MiniWorld w1, w2;
  const double at_4 = write_throughput(w1, *w1.bsfs, 4, "a");
  const double at_32 = write_throughput(w2, *w2.bsfs, 32, "b");
  // "capable ... to sustain it when the number of clients significantly
  // increases": within 15% across an 8x client increase at this scale.
  EXPECT_GT(at_32, at_4 * 0.85) << "4 clients=" << at_4 << " 32=" << at_32;
}

TEST(PaperClaims, SharedFileAppendMatchesDistinctFiles) {
  // §V: concurrent appends to one file ≈ writes to distinct files.
  MiniWorld shared, distinct;
  // Shared: one file, 16 appenders.
  {
    auto seed = [](bsfs::Bsfs* f) -> sim::Task<void> {
      auto client = f->make_client(1);
      auto writer = co_await client->create("/log");
      co_await writer->write(DataSpec::pattern(1, 0, 8 * kMiB));
      co_await writer->close();
    };
    shared.sim.spawn(seed(shared.bsfs.get()));
    shared.sim.run();
  }
  std::vector<double> durations(16);
  auto appender = [](sim::Simulator* sim, bsfs::Bsfs* f, net::NodeId node,
                     double* dur) -> sim::Task<void> {
    auto client = f->make_client(node);
    auto writer = co_await client->append("/log");
    BS_CHECK(writer != nullptr);
    const double t0 = sim->now();
    for (int i = 0; i < 32; ++i) {
      co_await writer->write(DataSpec::pattern(3, i * kMiB, kMiB));
    }
    co_await writer->close();
    *dur = sim->now() - t0;
  };
  for (int i = 0; i < 16; ++i) {
    shared.sim.spawn(appender(&shared.sim, shared.bsfs.get(),
                              static_cast<net::NodeId>(1 + i), &durations[i]));
  }
  shared.sim.run();
  double shared_mean = 0;
  for (double d : durations) shared_mean += 32.0 / d;
  shared_mean /= 16;

  const double distinct_mean = write_throughput(distinct, *distinct.bsfs, 16, "d");
  EXPECT_GT(shared_mean, distinct_mean * 0.8)
      << "shared=" << shared_mean << " distinct=" << distinct_mean;

  // And the shared file contains every appended block exactly once.
  uint64_t size = 0;
  auto check = [](bsfs::Bsfs* f, uint64_t* out) -> sim::Task<void> {
    auto client = f->make_client(2);
    auto st = co_await client->stat("/log");
    *out = st->size;
  };
  shared.sim.spawn(check(shared.bsfs.get(), &size));
  shared.sim.run();
  EXPECT_EQ(size, 8 * kMiB + 16 * 32 * kMiB);
}

TEST(PaperClaims, MapReduceJobFasterOnBsfs) {
  // §IV.C at mini scale, cost-model mode: grep over a shared input.
  auto run_grep = [](MiniWorld& w, fs::FileSystem& fs) {
    auto stage = [](fs::FileSystem* f) -> sim::Task<void> {
      auto client = f->make_client(0);
      auto writer = co_await client->create("/in/huge");
      for (int i = 0; i < 256; ++i) {
        co_await writer->write(DataSpec::pattern(7, i * kMiB, kMiB));
      }
      co_await writer->close();
    };
    w.sim.spawn(stage(&fs));
    w.sim.run();
    mr::DistributedGrep app("x");
    mr::MrConfig mcfg;
    mcfg.jobtracker_node = 0;
    for (net::NodeId n = 1; n < mini_cluster().num_nodes; ++n) {
      mcfg.tasktracker_nodes.push_back(n);
    }
    mr::MapReduceCluster cluster(w.sim, w.net, fs, mcfg);
    mr::JobConfig jc;
    jc.input_files = {"/in/huge"};
    jc.output_dir = "/out";
    jc.app = &app;
    jc.num_reducers = 2;
    jc.cost_model = true;
    jc.record_read_size = kMiB;
    mr::JobStats stats;
    auto run = [](mr::MapReduceCluster* c, mr::JobConfig conf,
                  mr::JobStats* out) -> sim::Task<void> {
      *out = co_await c->run_job(std::move(conf));
    };
    w.sim.spawn(run(&cluster, std::move(jc), &stats));
    w.sim.run();
    return stats;
  };
  MiniWorld wb, wh;
  const auto bsfs_stats = run_grep(wb, *wb.bsfs);
  const auto hdfs_stats = run_grep(wh, *wh.hdfs);
  EXPECT_EQ(bsfs_stats.maps, 32u);
  EXPECT_EQ(hdfs_stats.maps, 32u);
  EXPECT_LT(bsfs_stats.duration, hdfs_stats.duration * 1.05)
      << "BSFS=" << bsfs_stats.duration << " HDFS=" << hdfs_stats.duration;
}

TEST(PaperClaims, VersioningIsolatesConcurrentWorkflows) {
  MiniWorld w;
  // Stage a dataset; snapshot; overwrite; snapshot.
  blob::Version v_a = 0, v_b = 0;
  auto stage = [](MiniWorld* world, blob::Version* a,
                  blob::Version* b) -> sim::Task<void> {
    auto client = world->bsfs->make_client(1);
    auto writer = co_await client->create("/data");
    co_await writer->write(DataSpec::pattern(1, 0, 16 * kMiB));
    co_await writer->close();
    *a = co_await world->bsfs->snapshot(1, "/data");
    auto entry = co_await world->ns->lookup(1, "/data");
    auto blob_client = world->blobs->make_client(1);
    co_await blob_client->write(entry->blob, 0,
                                DataSpec::pattern(2, 0, 8 * kMiB));
    *b = co_await world->bsfs->snapshot(1, "/data");
  };
  w.sim.spawn(stage(&w, &v_a, &v_b));
  w.sim.run();
  ASSERT_NE(v_a, 0u);
  ASSERT_GT(v_b, v_a);

  // Concurrent readers pinned to each snapshot observe consistent data.
  int mismatches = -1;
  auto verify = [](MiniWorld* world, blob::Version va, blob::Version vb,
                   int* bad) -> sim::Task<void> {
    auto client = world->bsfs->make_client(3);
    auto* bc = static_cast<bsfs::BsfsClient*>(client.get());
    auto ra = co_await bc->open_at_version("/data", va);
    auto rb = co_await bc->open_at_version("/data", vb);
    auto da = co_await ra->read(0, 16 * kMiB);
    auto db = co_await rb->read(0, 16 * kMiB);
    *bad = 0;
    if (!da.content_equals(DataSpec::pattern(1, 0, 16 * kMiB))) ++*bad;
    // v_b: first 8 MiB rewritten, second half shared with v_a.
    if (!db.slice(0, 8 * kMiB).content_equals(DataSpec::pattern(2, 0, 8 * kMiB))) {
      ++*bad;
    }
    if (!db.slice(8 * kMiB, 8 * kMiB)
             .content_equals(DataSpec::pattern(1, 8 * kMiB, 8 * kMiB))) {
      ++*bad;
    }
  };
  w.sim.spawn(verify(&w, v_a, v_b, &mismatches));
  w.sim.run();
  EXPECT_EQ(mismatches, 0);
}

TEST(PaperClaims, MetadataLoadSpreadsOverDht) {
  MiniWorld w;
  // One shared file read by many clients: DHT requests must spread.
  auto stage = [](MiniWorld* world) -> sim::Task<void> {
    auto client = world->bsfs->make_client(0);
    auto writer = co_await client->create("/huge");
    for (int i = 0; i < 128; ++i) {
      co_await writer->write(DataSpec::pattern(5, i * kMiB, kMiB));
    }
    co_await writer->close();
  };
  w.sim.spawn(stage(&w));
  w.sim.run();

  auto reader_proc = [](bsfs::Bsfs* f, net::NodeId node,
                        uint64_t off) -> sim::Task<void> {
    auto client = f->make_client(node);
    auto reader = co_await client->open("/huge");
    co_await reader->read(off, 8 * kMiB);
  };
  for (int i = 0; i < 16; ++i) {
    w.sim.spawn(reader_proc(w.bsfs.get(), static_cast<net::NodeId>(1 + i),
                            static_cast<uint64_t>(i) * 8 * kMiB));
  }
  w.sim.run();

  auto per_node = w.blobs->metadata_dht().requests_per_node();
  uint64_t total = 0, busiest = 0;
  int serving = 0;
  for (auto& [n, c] : per_node) {
    total += c;
    busiest = std::max(busiest, c);
    serving += c > 0;
  }
  EXPECT_GT(serving, 10);                    // many nodes share the load
  EXPECT_LT(busiest * 5, total);             // no node serves > 20%
}

}  // namespace
}  // namespace bs
