// Tests for the KV store and its journals: basic ops, ordered scans,
// WAL replay, torn-tail recovery, checkpointing, and a randomized
// property test against std::map as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kv/journal.h"
#include "kv/kvstore.h"

namespace bs::kv {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

TEST(KvStore, PutGetErase) {
  KvStore kv;
  EXPECT_FALSE(kv.get("a").has_value());
  kv.put("a", bytes_of("1"));
  kv.put("b", bytes_of("2"));
  EXPECT_EQ(str_of(*kv.get("a")), "1");
  EXPECT_EQ(str_of(*kv.get("b")), "2");
  EXPECT_TRUE(kv.contains("a"));
  EXPECT_EQ(kv.size(), 2u);
  kv.put("a", bytes_of("one"));
  EXPECT_EQ(str_of(*kv.get("a")), "one");
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_FALSE(kv.contains("a"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, ValueBytesTracksContent) {
  KvStore kv;
  kv.put("k", Bytes(100));
  EXPECT_EQ(kv.value_bytes(), 100u);
  kv.put("k", Bytes(40));
  EXPECT_EQ(kv.value_bytes(), 40u);
  kv.put("j", Bytes(10));
  EXPECT_EQ(kv.value_bytes(), 50u);
  kv.erase("k");
  EXPECT_EQ(kv.value_bytes(), 10u);
}

TEST(KvStore, OrderedScan) {
  KvStore kv;
  for (const char* k : {"b", "d", "a", "c", "e"}) kv.put(k, bytes_of(k));
  std::string seen;
  kv.scan("b", "e", [&](const std::string& k, const Bytes&) {
    seen += k;
    return true;
  });
  EXPECT_EQ(seen, "bcd");
  // Early stop.
  seen.clear();
  kv.scan("", "", [&](const std::string& k, const Bytes&) {
    seen += k;
    return k != "c";
  });
  EXPECT_EQ(seen, "abc");
}

TEST(KvStore, PrefixScan) {
  KvStore kv;
  kv.put("p/1/a", bytes_of("x"));
  kv.put("p/1/b", bytes_of("y"));
  kv.put("p/2/a", bytes_of("z"));
  kv.put("q", bytes_of("w"));
  int count = 0;
  kv.scan_prefix("p/1/", [&](const std::string&, const Bytes&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

TEST(KvStore, ReplayFromMemoryJournal) {
  auto journal = std::make_unique<MemoryJournal>();
  MemoryJournal* j = journal.get();
  KvStore kv(std::move(journal));
  kv.put("a", bytes_of("1"));
  kv.put("b", bytes_of("2"));
  kv.erase("a");
  kv.put("c", bytes_of("3"));
  // "Reboot" with a copy of the journal contents (the store owns `j`, so
  // copy while it is still alive).
  auto replayed = std::make_unique<MemoryJournal>();
  j->scan([&](const Bytes& r) { replayed->append(r); });
  KvStore kv2(std::move(replayed));
  EXPECT_FALSE(kv2.contains("a"));
  EXPECT_EQ(str_of(*kv2.get("b")), "2");
  EXPECT_EQ(str_of(*kv2.get("c")), "3");
  EXPECT_EQ(kv2.size(), 2u);
}

TEST(KvStore, TornTailLosesOnlySuffix) {
  auto journal = std::make_unique<MemoryJournal>();
  MemoryJournal* j = journal.get();
  KvStore kv(std::move(journal));
  for (int i = 0; i < 10; ++i) kv.put("k" + std::to_string(i), bytes_of("v"));
  // Crash: keep only the first 6 records.
  auto replayed = std::make_unique<MemoryJournal>();
  int copied = 0;
  j->scan([&](const Bytes& r) {
    if (copied++ < 6) replayed->append(r);
  });
  KvStore kv2(std::move(replayed));
  EXPECT_EQ(kv2.size(), 6u);
  EXPECT_TRUE(kv2.contains("k5"));
  EXPECT_FALSE(kv2.contains("k6"));
}

TEST(KvStore, CheckpointBoundsJournalAndPreservesState) {
  auto journal = std::make_unique<MemoryJournal>();
  MemoryJournal* j = journal.get();
  KvStore kv(std::move(journal));
  for (int i = 0; i < 100; ++i) kv.put("k" + std::to_string(i), Bytes(10));
  EXPECT_EQ(j->record_count(), 100u);
  kv.checkpoint();
  EXPECT_EQ(j->record_count(), 1u);  // one snapshot record
  // Replaying just the snapshot reproduces the state.
  auto replayed = std::make_unique<MemoryJournal>();
  j->scan([&](const Bytes& r) { replayed->append(r); });
  KvStore kv2(std::move(replayed));
  EXPECT_EQ(kv2.size(), 100u);
  EXPECT_EQ(kv2.value_bytes(), 1000u);
}

class TempFile {
 public:
  TempFile() {
    char tmpl[] = "/tmp/bs_kv_test_XXXXXX";
    const int fd = mkstemp(tmpl);
    BS_CHECK(fd >= 0);
    close(fd);
    path_ = tmpl;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileJournal, PersistsAcrossReopen) {
  TempFile tmp;
  {
    KvStore kv(std::make_unique<FileJournal>(tmp.path()));
    kv.put("x", bytes_of("42"));
    kv.put("y", bytes_of("43"));
    kv.erase("x");
  }
  KvStore kv2(std::make_unique<FileJournal>(tmp.path()));
  EXPECT_FALSE(kv2.contains("x"));
  EXPECT_EQ(str_of(*kv2.get("y")), "43");
}

TEST(FileJournal, DetectsCorruptTail) {
  TempFile tmp;
  {
    FileJournal j(tmp.path());
    j.append(bytes_of("record-one"));
    j.append(bytes_of("record-two"));
  }
  // Flip a byte in the last record's payload.
  {
    std::FILE* f = std::fopen(tmp.path().c_str(), "r+b");
    std::fseek(f, -1, SEEK_END);
    std::fputc('X', f);
    std::fclose(f);
  }
  FileJournal j(tmp.path());
  std::vector<std::string> seen;
  j.scan([&](const Bytes& r) { seen.push_back(str_of(r)); });
  ASSERT_EQ(seen.size(), 1u);  // corrupt tail dropped
  EXPECT_EQ(seen[0], "record-one");
}

TEST(FileJournal, TruncatedFileStopsCleanly) {
  TempFile tmp;
  {
    FileJournal j(tmp.path());
    j.append(bytes_of("aaaa"));
    j.append(bytes_of("bbbb"));
  }
  // Truncate mid-record.
  truncate(tmp.path().c_str(), 14);  // 8 header + 4 payload + 2 of next header
  FileJournal j(tmp.path());
  int count = 0;
  j.scan([&](const Bytes&) { ++count; });
  EXPECT_EQ(count, 1);
}

// The torn-tail hardening proved at every byte offset: truncate a real
// on-disk journal anywhere inside (or at the end of) its last record,
// reopen, append a fresh record, and reopen again. Every record that was
// fully on disk before the tear must replay, and the post-recovery append
// must be reachable — without the constructor truncating the torn tail,
// fopen("ab") would park the new record behind garbage where scan() (which
// stops at the first bad frame) could never reach it.
TEST(FileJournal, TornTailAtEveryOffsetKeepsAckedPrefix) {
  TempFile master;
  const std::vector<std::string> payloads = {"aaaaa", "bbbbbbb", "ccc"};
  std::vector<uint64_t> frame_end;  // file offset just past each record
  {
    FileJournal j(master.path());
    uint64_t off = 0;
    for (const auto& p : payloads) {
      j.append(bytes_of(p));
      off += 8 + p.size();  // [u32 len][u32 crc] + payload
      frame_end.push_back(off);
    }
  }
  std::FILE* mf = std::fopen(master.path().c_str(), "rb");
  ASSERT_NE(mf, nullptr);
  std::vector<char> image(frame_end.back());
  ASSERT_EQ(std::fread(image.data(), 1, image.size(), mf), image.size());
  std::fclose(mf);

  for (uint64_t cut = 0; cut <= image.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    TempFile tmp;
    {
      std::FILE* f = std::fopen(tmp.path().c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
      std::fclose(f);
    }
    const size_t intact =
        static_cast<size_t>(std::count_if(frame_end.begin(), frame_end.end(),
                                          [&](uint64_t e) { return e <= cut; }));
    {
      FileJournal j(tmp.path());
      EXPECT_EQ(j.record_count(), intact);
      j.append(bytes_of("recovered"));
    }
    FileJournal j(tmp.path());
    std::vector<std::string> seen;
    j.scan([&](const Bytes& r) { seen.push_back(str_of(r)); });
    ASSERT_EQ(seen.size(), intact + 1);
    for (size_t i = 0; i < intact; ++i) EXPECT_EQ(seen[i], payloads[i]);
    EXPECT_EQ(seen.back(), "recovered");
  }
}

TEST(FileJournal, CheckpointThenRecover) {
  TempFile tmp;
  {
    KvStore kv(std::make_unique<FileJournal>(tmp.path()));
    for (int i = 0; i < 50; ++i) kv.put("k" + std::to_string(i), bytes_of("v"));
    kv.checkpoint();
    kv.put("extra", bytes_of("tail"));
  }
  KvStore kv2(std::make_unique<FileJournal>(tmp.path()));
  EXPECT_EQ(kv2.size(), 51u);
  EXPECT_TRUE(kv2.contains("extra"));
}

// Property test: a random op sequence applied to KvStore and to std::map
// must end in identical states, including after a replay.
class KvOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(KvOracleTest, MatchesStdMapOracle) {
  Rng rng(GetParam());
  auto journal = std::make_unique<MemoryJournal>();
  MemoryJournal* j = journal.get();
  KvStore kv(std::move(journal));
  std::map<std::string, Bytes> oracle;

  for (int op = 0; op < 2000; ++op) {
    const std::string key = "key" + std::to_string(rng.below(50));
    const double dice = rng.uniform();
    if (dice < 0.55) {
      Bytes value(rng.below(64));
      for (auto& b : value) b = static_cast<uint8_t>(rng.below(256));
      kv.put(key, value);
      oracle[key] = value;
    } else if (dice < 0.8) {
      EXPECT_EQ(kv.erase(key), oracle.erase(key) > 0);
    } else if (dice < 0.95) {
      auto got = kv.get(key);
      auto it = oracle.find(key);
      ASSERT_EQ(got.has_value(), it != oracle.end());
      if (got) EXPECT_EQ(*got, it->second);
    } else {
      kv.checkpoint();
    }
  }
  ASSERT_EQ(kv.size(), oracle.size());
  ASSERT_EQ(kv.value_bytes(), [&] {
    uint64_t total = 0;
    for (auto& [k, v] : oracle) total += v.size();
    return total;
  }());

  // Full-state comparison via scan.
  auto it = oracle.begin();
  kv.scan("", "", [&](const std::string& k, const Bytes& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, oracle.end());

  // Replay equivalence.
  auto replayed = std::make_unique<MemoryJournal>();
  j->scan([&](const Bytes& r) { replayed->append(r); });
  KvStore kv2(std::move(replayed));
  EXPECT_EQ(kv2.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    auto got = kv2.get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvOracleTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace bs::kv
