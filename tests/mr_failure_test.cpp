// Failure-injection tests: the framework re-executes failed task attempts
// (paper §II.A) and still produces exact results — including *completed*
// maps whose intermediate data a mapper-node crash destroyed (the
// fetch-failure → re-execution path), and the kDfs intermediate mode that
// rides out the same crash without re-executing anything.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "common/wordlist.h"
#include "fault/injector.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "mr/shuffle.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;

struct FWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;

  FWorld()
      : net(sim,
            [] {
              net::ClusterConfig c;
              c.num_nodes = 16;
              c.nodes_per_rack = 4;
              return c;
            }()),
        blobs(sim, net, {}), ns(sim, net, {}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kBlock / 4,
                              .replication = 1, .enable_cache = true}) {}
};

sim::Task<void> put_text(fs::FileSystem* f, std::string path,
                         std::string text) {
  auto client = f->make_client(0);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::from_string(text));
  co_await writer->close();
}

sim::Task<void> run_one(MapReduceCluster* mr, JobConfig jc, JobStats* out) {
  *out = co_await mr->run_job(std::move(jc));
}

class FailureProbTest : public ::testing::TestWithParam<double> {};

TEST_P(FailureProbTest, WordCountSurvivesTaskFailures) {
  const double prob = GetParam();
  FWorld w;
  Rng rng(11);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 4) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  WordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = prob;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  // The job completes and the counts are exact despite re-executions.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  if (prob >= 0.5) {
    EXPECT_GT(stats.map_failures + stats.reduce_failures, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, FailureProbTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

TEST(Failure, FailuresExtendJobDuration) {
  auto run_with = [](double prob) {
    FWorld w;
    auto stage = [](fs::FileSystem* f) -> sim::Task<void> {
      auto client = f->make_client(0);
      auto writer = co_await client->create("/in");
      co_await writer->write(DataSpec::pattern(1, 0, kBlock * 8));
      co_await writer->close();
    };
    w.sim.spawn(stage(&w.bsfs));
    w.sim.run();
    DistributedGrep app("x");
    MrConfig mcfg;
    mcfg.heartbeat_s = 0.05;
    mcfg.task_startup_s = 0.01;
    mcfg.task_failure_prob = prob;
    MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
    JobConfig jc;
    jc.input_files = {"/in"};
    jc.output_dir = "/out";
    jc.app = &app;
    jc.num_reducers = 1;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    JobStats stats;
    w.sim.spawn(run_one(&mr, std::move(jc), &stats));
    w.sim.run();
    return stats;
  };
  const auto clean = run_with(0.0);
  const auto faulty = run_with(0.5);
  EXPECT_EQ(clean.map_failures, 0u);
  EXPECT_GT(faulty.map_failures + faulty.reduce_failures, 0u);
  EXPECT_GT(faulty.duration, clean.duration);
  // All work still completed exactly once.
  EXPECT_EQ(faulty.maps, clean.maps);
  EXPECT_EQ(faulty.shuffle_bytes, clean.shuffle_bytes);
}

TEST(Failure, CrashedAttemptsLeaveNoTempFileLeak) {
  // Crashed file-producing attempts die mid-write and leave partial temp
  // files under _attempts/ that nothing ever references again; the
  // job-completion cleanup must sweep them, or every crashy job leaks
  // namespace entries forever.
  FWorld w;
  Rng rng(23);
  std::string text;
  while (text.size() < kBlock * 6) {
    text += random_sentence(rng, 1 + rng.below(8));
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  WordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = 0.5;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 3;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();
  // The scenario must actually crash attempts for the sweep to matter.
  EXPECT_GT(stats.map_failures + stats.reduce_failures, 0u);

  std::vector<std::string> leftovers;
  bool dir_gone = false;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* tmp,
                  bool* gone) -> sim::Task<void> {
    auto client = f->make_client(1);
    *tmp = co_await client->list("/out/_attempts");
    auto st = co_await client->stat("/out/_attempts");
    *gone = !st.has_value();
  };
  w.sim.spawn(check(&w.bsfs, &leftovers, &dir_gone));
  w.sim.run();
  EXPECT_TRUE(leftovers.empty())
      << leftovers.size() << " orphaned temp files leaked";
  EXPECT_TRUE(dir_gone) << "_attempts directory entry not cleaned up";
}

// ---- mapper-node crashes vs the intermediate-data subsystem ----

// A 16-node world with replicated storage (the job input must survive the
// crash — only the *intermediate* data story differs between the modes)
// and a fault injector wired to the providers.
struct CrashWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;
  fault::FaultInjector injector;

  CrashWorld()
      : net(sim,
            [] {
              net::ClusterConfig c;
              c.num_nodes = 16;
              c.nodes_per_rack = 4;
              c.rpc_timeout_s = 0.3;
              return c;
            }()),
        blobs(sim, net, {}), ns(sim, net, {}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kBlock / 4,
                              .replication = 2, .enable_cache = true}),
        injector(sim, net, {}) {
    fault::wire_blobseer(injector, blobs);
    // Ground-truth liveness keeps degraded reads from paying a timeout per
    // dead replica — the test is about the engine, not detection latency.
    blobs.set_liveness(&net.ground_truth());
  }
};

// WordCount with a slow map rate so the map phase is long enough for a
// mid-phase crash to land between the first commits and the last.
class CrashyWordCount final : public MapReduceApp {
 public:
  std::string name() const override { return "crashy-wordcount"; }
  void map(uint64_t, const std::string& line, Emitter& out) override {
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() ||
          std::isspace(static_cast<unsigned char>(line[i]))) {
        if (i > start) out.emit(line.substr(start, i - start), "1");
        start = i + 1;
      }
    }
  }
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    out.emit(key, std::to_string(total));
  }
  double map_rate_bps() const override { return 8e3; }  // ~0.5 s per block
  double reduce_rate_bps() const override { return 256e3; }
  double map_selectivity() const override { return 1.1; }
  double output_ratio() const override { return 0.05; }
};

// Runs the crash scenario — tasktrackers {1, 2}, node 1 crashes (disk
// wiped) mid-map-phase, after some of its maps committed — under the given
// intermediate mode, and checks the output is exact either way.
JobStats run_mapper_crash(IntermediateMode mode) {
  CrashWorld w;
  Rng rng(31);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 8) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  // Lands mid-map-phase: the first wave (two maps on node 1) has
  // committed, the second wave is still running.
  w.injector.crash_at(1, 0.8);

  CrashyWordCount app;
  MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.fetch_failure_threshold = 2;
  mcfg.fetch_retry_s = 0.1;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  jc.intermediate_mode = mode;
  jc.intermediate_replication = mode == IntermediateMode::kDfs ? 2 : 0;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  // The job survived the crash with exact results.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(stats.maps, 8u);
  // Every committed map has exactly one locality attribution, even after
  // lost outputs were revoked and re-attributed by the re-execution.
  EXPECT_EQ(stats.data_local_maps + stats.rack_local_maps + stats.remote_maps,
            stats.maps);

  // Nothing leaked: neither _attempts temp files nor _intermediate files.
  std::vector<std::string> att_left, inter_left;
  bool inter_gone = false;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* att,
                  std::vector<std::string>* inter,
                  bool* gone) -> sim::Task<void> {
    auto client = f->make_client(2);
    *att = co_await client->list("/out/_attempts");
    *inter = co_await client->list("/out/_intermediate");
    auto st = co_await client->stat("/out/_intermediate");
    *gone = !st.has_value();
  };
  w.sim.spawn(check(&w.bsfs, &att_left, &inter_left, &inter_gone));
  w.sim.run();
  EXPECT_TRUE(att_left.empty()) << att_left.size() << " temp files leaked";
  EXPECT_TRUE(inter_left.empty())
      << inter_left.size() << " intermediate files leaked";
  EXPECT_TRUE(inter_gone) << "_intermediate directory entry not cleaned up";
  return stats;
}

TEST(Failure, MapperCrashForcesReexecutionWithLocalIntermediates) {
  // Classic Hadoop path made honest: node 1's committed map outputs died
  // with it; the reducers reported fetch failures until the JobTracker
  // declared the outputs lost and re-ran the *completed* maps elsewhere.
  const JobStats stats = run_mapper_crash(IntermediateMode::kLocalDisk);
  EXPECT_GT(stats.fetch_failures, 0u);
  EXPECT_GE(stats.maps_reexecuted, 1u);
  EXPECT_EQ(stats.intermediate_bytes_read, stats.shuffle_bytes);
}

TEST(Failure, DfsIntermediatesSurviveMapperCrashWithoutReexecution) {
  // The paper's alternative: intermediates in BSFS at replication 2 keep
  // serving the shuffle through replica failover — no fetch failures, no
  // re-execution cascade; the map phase paid replicated writes instead.
  const JobStats stats = run_mapper_crash(IntermediateMode::kDfs);
  EXPECT_EQ(stats.fetch_failures, 0u);
  EXPECT_EQ(stats.maps_reexecuted, 0u);
  EXPECT_GT(stats.intermediate_bytes_written, 0u);
  EXPECT_EQ(stats.intermediate_bytes_read, stats.shuffle_bytes);
}

TEST(Failure, SplitsArePinnedAgainstConcurrentAppends) {
  // Regression for the split-size race: splits used to be derived from a
  // stat at job start, and a RETRIED attempt re-opening the live file
  // could observe a larger size if a writer appended meanwhile — its last
  // split would run past the original end and emit records the first
  // attempt never saw. With the input pinned in a snapshot at submission,
  // every attempt of a task reads the identical byte range (the engine
  // asserts it against the pinned snapshot), and ingested data never
  // leaks into results.
  CrashWorld w;
  Rng rng(47);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 8) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  // No trailing newline: the final unterminated line is exactly the case
  // where a grown file changes what the last split's reader emits.
  while (!text.empty() && text.back() == '\n') text.pop_back();
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();
  const uint64_t pinned_size = text.size();

  // Continuous ingest: a writer keeps appending a marker word while the
  // job runs. None of it may reach the job's output.
  auto appender = [](sim::Simulator* s, fs::FileSystem* f) -> sim::Task<void> {
    auto client = f->make_client(3);
    for (int round = 0; round < 8; ++round) {
      co_await s->delay(0.3);
      auto writer = co_await client->append("/in");
      if (writer == nullptr) co_return;
      co_await writer->write(
          DataSpec::from_string("INGESTED INGESTED INGESTED\n"));
      co_await writer->close();
    }
  };

  CrashyWordCount app;  // slow maps: the job straddles many append rounds
  MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = 0.5;  // retried attempts re-open their input
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.spawn(appender(&w.sim, &w.bsfs));
  w.sim.run();

  // Retries actually happened, and the counts are exactly the pinned
  // text's — the ingested marker never appears.
  EXPECT_GT(stats.map_failures + stats.reduce_failures, 0u);
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got.count("INGESTED"), 0u);
  EXPECT_EQ(got, expect);
  // The plan consumed the pinned snapshot, not the grown live file...
  EXPECT_EQ(stats.input_bytes, pinned_size);
  ASSERT_EQ(stats.input_snapshot_versions.size(), 1u);
  EXPECT_GT(stats.input_snapshot_versions[0], 0u);
  // ...and the v4 counter shows how far ingest ran ahead mid-job.
  EXPECT_GT(stats.bytes_ingested_during_job, 0u);
}

TEST(Failure, GeneratorMapsAreRetriedToo) {
  FWorld w;
  RandomTextWriter app(kBlock);
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = 0.4;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_generator_maps = 12;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();
  EXPECT_EQ(stats.maps, 12u);
  EXPECT_GT(stats.map_failures, 0u);
  // Every output file exists exactly once with the full payload.
  int present = 0;
  auto check = [](fs::FileSystem* f, int* out) -> sim::Task<void> {
    auto client = f->make_client(1);
    auto names = co_await client->list("/out");
    for (const auto& name : names) {
      auto st = co_await client->stat(name);
      if (st.has_value() && st->size >= kBlock) ++*out;
    }
  };
  w.sim.spawn(check(&w.bsfs, &present));
  w.sim.run();
  EXPECT_EQ(present, 12);
}

}  // namespace
}  // namespace bs::mr
