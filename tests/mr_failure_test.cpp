// Failure-injection tests: the framework re-executes failed task attempts
// (paper §II.A) and still produces exact results.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "common/wordlist.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;

struct FWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;

  FWorld()
      : net(sim,
            [] {
              net::ClusterConfig c;
              c.num_nodes = 16;
              c.nodes_per_rack = 4;
              return c;
            }()),
        blobs(sim, net, {}), ns(sim, net, {}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kBlock / 4,
                              .replication = 1, .enable_cache = true}) {}
};

sim::Task<void> put_text(fs::FileSystem* f, std::string path,
                         std::string text) {
  auto client = f->make_client(0);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::from_string(text));
  co_await writer->close();
}

sim::Task<void> run_one(MapReduceCluster* mr, JobConfig jc, JobStats* out) {
  *out = co_await mr->run_job(std::move(jc));
}

class FailureProbTest : public ::testing::TestWithParam<double> {};

TEST_P(FailureProbTest, WordCountSurvivesTaskFailures) {
  const double prob = GetParam();
  FWorld w;
  Rng rng(11);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 4) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  WordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = prob;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  // The job completes and the counts are exact despite re-executions.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  if (prob >= 0.5) {
    EXPECT_GT(stats.map_failures + stats.reduce_failures, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, FailureProbTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

TEST(Failure, FailuresExtendJobDuration) {
  auto run_with = [](double prob) {
    FWorld w;
    auto stage = [](fs::FileSystem* f) -> sim::Task<void> {
      auto client = f->make_client(0);
      auto writer = co_await client->create("/in");
      co_await writer->write(DataSpec::pattern(1, 0, kBlock * 8));
      co_await writer->close();
    };
    w.sim.spawn(stage(&w.bsfs));
    w.sim.run();
    DistributedGrep app("x");
    MrConfig mcfg;
    mcfg.heartbeat_s = 0.05;
    mcfg.task_startup_s = 0.01;
    mcfg.task_failure_prob = prob;
    MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
    JobConfig jc;
    jc.input_files = {"/in"};
    jc.output_dir = "/out";
    jc.app = &app;
    jc.num_reducers = 1;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    JobStats stats;
    w.sim.spawn(run_one(&mr, std::move(jc), &stats));
    w.sim.run();
    return stats;
  };
  const auto clean = run_with(0.0);
  const auto faulty = run_with(0.5);
  EXPECT_EQ(clean.map_failures, 0u);
  EXPECT_GT(faulty.map_failures + faulty.reduce_failures, 0u);
  EXPECT_GT(faulty.duration, clean.duration);
  // All work still completed exactly once.
  EXPECT_EQ(faulty.maps, clean.maps);
  EXPECT_EQ(faulty.shuffle_bytes, clean.shuffle_bytes);
}

TEST(Failure, CrashedAttemptsLeaveNoTempFileLeak) {
  // Crashed file-producing attempts die mid-write and leave partial temp
  // files under _attempts/ that nothing ever references again; the
  // job-completion cleanup must sweep them, or every crashy job leaks
  // namespace entries forever.
  FWorld w;
  Rng rng(23);
  std::string text;
  while (text.size() < kBlock * 6) {
    text += random_sentence(rng, 1 + rng.below(8));
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  WordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = 0.5;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 3;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();
  // The scenario must actually crash attempts for the sweep to matter.
  EXPECT_GT(stats.map_failures + stats.reduce_failures, 0u);

  std::vector<std::string> leftovers;
  bool dir_gone = false;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* tmp,
                  bool* gone) -> sim::Task<void> {
    auto client = f->make_client(1);
    *tmp = co_await client->list("/out/_attempts");
    auto st = co_await client->stat("/out/_attempts");
    *gone = !st.has_value();
  };
  w.sim.spawn(check(&w.bsfs, &leftovers, &dir_gone));
  w.sim.run();
  EXPECT_TRUE(leftovers.empty())
      << leftovers.size() << " orphaned temp files leaked";
  EXPECT_TRUE(dir_gone) << "_attempts directory entry not cleaned up";
}

TEST(Failure, GeneratorMapsAreRetriedToo) {
  FWorld w;
  RandomTextWriter app(kBlock);
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.task_failure_prob = 0.4;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_generator_maps = 12;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();
  EXPECT_EQ(stats.maps, 12u);
  EXPECT_GT(stats.map_failures, 0u);
  // Every output file exists exactly once with the full payload.
  int present = 0;
  auto check = [](fs::FileSystem* f, int* out) -> sim::Task<void> {
    auto client = f->make_client(1);
    auto names = co_await client->list("/out");
    for (const auto& name : names) {
      auto st = co_await client->stat(name);
      if (st.has_value() && st->size >= kBlock) ++*out;
    }
  };
  w.sim.spawn(check(&w.bsfs, &present));
  w.sim.run();
  EXPECT_EQ(present, 12);
}

}  // namespace
}  // namespace bs::mr
