// Property-style fuzz test for the MapReduce engine: seeded, deterministic,
// bounded iterations. Each iteration builds a fresh world on a randomized
// configuration (scheduler policy, slowstart, speculation, slow-node
// throttling, a crashed-and-detected storage node) and submits a
// randomized mix of jobs against BOTH storage back-ends, then checks
// engine invariants:
//   * every job completes with one committed attempt per task,
//   * all input bytes are planned and read (input_bytes == staged size),
//   * output and shuffle bytes match the app cost model exactly — even
//     when a mid-job mapper crash destroys kLocalDisk intermediates and
//     forces completed maps to re-execute, no byte is double-counted (a
//     reducer keeps partitions it already copied and re-fetches only what
//     it lost; the re-executed map's first attempt never lands twice),
//   * no task attempt is ever launched on a node the failure detector
//     believes dead.
// Each job randomizes its IntermediateMode (mr/shuffle.h), so both the
// local-disk fetch-failure path and the DFS-backed shuffle run under the
// same crash schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "fault/detector.h"
#include "fault/injector.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;
constexpr uint32_t kNodes = 12;
constexpr int kIterations = 4;

// Shuffle-heavy cost app slowed far enough that the mid-job crash lands
// while maps are committing and reduces are fetching — the window where
// destroyed kLocalDisk intermediates actually force re-execution.
class SlowSort final : public MapReduceApp {
 public:
  std::string name() const override { return "slow-sort"; }
  double map_rate_bps() const override { return 8e3; }
  double map_selectivity() const override { return 1.0; }
  double reduce_rate_bps() const override { return 64e3; }
  double output_ratio() const override { return 1.0; }
};

struct JobPlan {
  enum Kind { kGrep, kSort, kRtw } kind = kGrep;
  std::string input;       // staged file (grep/sort)
  uint64_t input_bytes = 0;
  uint32_t reducers = 1;
  uint32_t generator_maps = 0;   // rtw
  uint64_t bytes_per_map = 0;    // rtw
  bool shared_output = false;    // OutputMode::kSharedAppend
  IntermediateMode intermediate = IntermediateMode::kLocalDisk;
  std::string output_dir;
};

// Replicates the engine's cost-model arithmetic: per-map partition bytes
// are floor(length * selectivity / reducers), per-reduce output is
// floor(shuffled * output_ratio).
void expected_cost(const JobPlan& plan, const MapReduceApp& app,
                   uint64_t* maps, uint64_t* shuffle, uint64_t* output) {
  const uint64_t m = (plan.input_bytes + kBlock - 1) / kBlock;
  *maps = m;
  std::vector<uint64_t> per_reduce(plan.reducers, 0);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t len = std::min<uint64_t>(kBlock, plan.input_bytes - i * kBlock);
    const double inter = static_cast<double>(len) * app.map_selectivity();
    for (uint32_t r = 0; r < plan.reducers; ++r) {
      per_reduce[r] += static_cast<uint64_t>(inter / plan.reducers);
    }
  }
  *shuffle = 0;
  *output = 0;
  for (uint32_t r = 0; r < plan.reducers; ++r) {
    *shuffle += per_reduce[r];
    *output += static_cast<uint64_t>(static_cast<double>(per_reduce[r]) *
                                     app.output_ratio());
  }
}

sim::Task<void> stage_file(fs::FileSystem* f, std::string path,
                           uint64_t bytes, uint64_t seed) {
  auto client = f->make_client(1);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::pattern(seed, 0, bytes));
  co_await writer->close();
}

sim::Task<void> run_into(MapReduceCluster* mr, JobConfig jc, JobStats* out,
                         sim::WaitGroup* wg) {
  *out = co_await mr->run_job(std::move(jc));
  wg->done();
}

void run_iteration(const std::string& backend, uint64_t seed) {
  SCOPED_TRACE(backend + " seed=" + std::to_string(seed));
  Rng rng(seed);

  sim::Simulator sim;
  net::ClusterConfig ncfg;
  ncfg.num_nodes = kNodes;
  ncfg.nodes_per_rack = 4;
  ncfg.rpc_timeout_s = 0.3;
  net::Network net(sim, ncfg);
  blob::BlobSeerCluster blobs(sim, net, {});
  bsfs::NamespaceManager ns(sim, net, {});
  bsfs::Bsfs bsfs_fs(sim, net, blobs, ns,
                     bsfs::BsfsConfig{.block_size = kBlock,
                                      .page_size = kBlock / 4,
                                      .replication = 3,
                                      .enable_cache = true});
  hdfs::Hdfs hdfs_fs(sim, net,
                     hdfs::HdfsConfig{.namenode = {.node = 0,
                                                   .service_time_s = 150e-6,
                                                   .block_size = kBlock,
                                                   .replication = 3,
                                                   .placement_seed = seed},
                                      .stream_efficiency = 0.92});
  const bool use_bsfs = backend == "BSFS";
  fs::FileSystem& fs =
      use_bsfs ? static_cast<fs::FileSystem&>(bsfs_fs)
               : static_cast<fs::FileSystem&>(hdfs_fs);

  // Stage 1-2 input files before any fault.
  const uint32_t num_files = 1 + static_cast<uint32_t>(rng.below(2));
  std::vector<std::pair<std::string, uint64_t>> files;
  for (uint32_t i = 0; i < num_files; ++i) {
    // Large enough that every tasktracker hosts map tasks — so the
    // mid-job victim always holds committed map outputs worth losing.
    const uint64_t bytes = kBlock * (12 + rng.below(6)) + rng.below(kBlock);
    const std::string path = "/in/f" + std::to_string(i);
    files.emplace_back(path, bytes);
    sim.spawn(stage_file(&fs, path, bytes, seed + i));
  }
  sim.run();

  // Fault plumbing: one storage node crashes (disk wiped) and must be
  // detected before jobs run; another node is merely slow.
  fault::FaultInjector injector(sim, net, {.seed = seed ^ 0xfa117});
  if (use_bsfs) {
    fault::wire_blobseer(injector, blobs);
  } else {
    fault::wire_hdfs(injector, hdfs_fs);
  }
  std::vector<net::NodeId> storage;
  for (net::NodeId n = 1; n < kNodes; ++n) storage.push_back(n);
  fault::FailureDetector detector(sim, net, storage, {.node = 0});
  if (use_bsfs) {
    blobs.set_liveness(&detector);
  } else {
    hdfs_fs.set_liveness(&detector);
  }

  const net::NodeId victim =
      1 + static_cast<net::NodeId>(rng.below(kNodes - 1));
  net::NodeId slow = victim;
  while (slow == victim) {
    slow = 1 + static_cast<net::NodeId>(rng.below(kNodes - 1));
  }
  // A second victim crashes MID-JOB (committed kLocalDisk map outputs on
  // it are destroyed; kDfs intermediates ride replica failover).
  net::NodeId victim2 = victim;
  while (victim2 == victim || victim2 == slow) {
    victim2 = 1 + static_cast<net::NodeId>(rng.below(kNodes - 1));
  }
  const double slow_factor = 2.0 + rng.uniform() * 4.0;

  detector.start();
  injector.crash_at(victim, 0.1);

  // Randomized engine configuration.
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.scheduler = rng.chance(0.5) ? SchedulerKind::kFair : SchedulerKind::kFifo;
  const double slowstarts[] = {0.0, 0.5, 1.0};
  mcfg.reduce_slowstart = slowstarts[rng.below(3)];
  mcfg.speculative_execution = rng.chance(0.5);
  mcfg.speculative_min_runtime_s = 0.05;
  mcfg.speculation_interval_s = 0.1;
  mcfg.fetch_failure_threshold = 2;
  mcfg.fetch_retry_s = 0.1;
  mcfg.liveness = &detector;
  MapReduceCluster mr(sim, net, fs, mcfg);

  // Randomized job mix.
  DistributedGrep grep("needle");
  SlowSort sort_app;
  RandomTextWriter rtw(kBlock * 2);
  const uint32_t num_jobs = 1 + static_cast<uint32_t>(rng.below(2));
  std::vector<JobPlan> plans;
  for (uint32_t j = 0; j < num_jobs; ++j) {
    JobPlan plan;
    const uint64_t pick = rng.below(3);
    plan.kind = pick == 0 ? JobPlan::kGrep
                          : (pick == 1 ? JobPlan::kSort : JobPlan::kRtw);
    plan.reducers = 1 + static_cast<uint32_t>(rng.below(3));
    plan.shared_output = rng.chance(0.5);
    plan.intermediate = rng.chance(0.5) ? IntermediateMode::kDfs
                                        : IntermediateMode::kLocalDisk;
    plan.output_dir = "/out/j" + std::to_string(j);
    if (plan.kind == JobPlan::kRtw) {
      plan.generator_maps = 3 + static_cast<uint32_t>(rng.below(4));
      plan.bytes_per_map = kBlock * 2;
    } else {
      const auto& [path, bytes] = files[rng.below(files.size())];
      plan.input = path;
      plan.input_bytes = bytes;
    }
    plans.push_back(std::move(plan));
  }

  std::vector<JobStats> stats(plans.size());
  auto orchestrate = [](sim::Simulator* s, fault::FailureDetector* det,
                        fault::FaultInjector* inj, net::NodeId slow_node,
                        double factor, net::NodeId midjob_victim,
                        MapReduceCluster* engine,
                        std::vector<JobPlan>* ps, DistributedGrep* g,
                        SlowSort* so, RandomTextWriter* rt,
                        std::vector<JobStats>* out) -> sim::Task<void> {
    // Jobs start only after the crash is detected, so the scheduler's
    // liveness view already knows the victim is dead.
    while (det->dead_nodes().empty()) {
      co_await s->delay(0.2);
    }
    inj->slow_node_at(slow_node, factor, s->now() + 0.2);
    // The second victim dies while the jobs are in flight. With the
    // classic serial phases (slowstart 1.0) the crash is timed into the
    // window where maps have committed but no reduce has fetched yet —
    // committed intermediate outputs die with the node; with overlapped
    // shuffle it lands on running attempts instead (abort + re-fetch).
    const double crash_offset =
        engine->config().reduce_slowstart >= 1.0 ? 0.66 : 0.5;
    inj->crash_at(midjob_victim, s->now() + crash_offset);
    sim::WaitGroup wg(*s);
    wg.add(ps->size());
    for (size_t j = 0; j < ps->size(); ++j) {
      const JobPlan& plan = (*ps)[j];
      JobConfig jc;
      jc.output_dir = plan.output_dir;
      jc.num_reducers = plan.reducers;
      jc.cost_model = true;
      jc.record_read_size = kBlock;
      if (plan.shared_output) {
        jc.output_mode = JobConfig::OutputMode::kSharedAppend;
      }
      jc.intermediate_mode = plan.intermediate;
      if (plan.intermediate == IntermediateMode::kDfs) {
        jc.intermediate_replication = 2;
      }
      switch (plan.kind) {
        case JobPlan::kGrep:
          jc.app = g;
          jc.input_files = {plan.input};
          break;
        case JobPlan::kSort:
          jc.app = so;
          jc.input_files = {plan.input};
          break;
        case JobPlan::kRtw:
          jc.app = rt;
          jc.num_generator_maps = plan.generator_maps;
          break;
      }
      s->spawn(run_into(engine, std::move(jc), &(*out)[j], &wg));
    }
    co_await wg.wait();
    det->stop();
  };
  sim.spawn(orchestrate(&sim, &detector, &injector, slow, slow_factor,
                        victim2, &mr, &plans, &grep, &sort_app, &rtw,
                        &stats));
  sim.run();

  // --- invariants ---
  for (size_t j = 0; j < plans.size(); ++j) {
    const JobPlan& plan = plans[j];
    const JobStats& s = stats[j];
    SCOPED_TRACE("job " + std::to_string(j) + " (" + s.job_name + ")");
    if (plan.kind == JobPlan::kRtw) {
      EXPECT_EQ(s.maps, plan.generator_maps);
      EXPECT_EQ(s.reduces, 0u);
      // Generator output is exact: committed bytes == maps * payload.
      EXPECT_EQ(s.output_bytes, plan.generator_maps * plan.bytes_per_map);
    } else {
      const MapReduceApp& app =
          plan.kind == JobPlan::kGrep
              ? static_cast<const MapReduceApp&>(grep)
              : static_cast<const MapReduceApp&>(sort_app);
      uint64_t want_maps = 0, want_shuffle = 0, want_output = 0;
      expected_cost(plan, app, &want_maps, &want_shuffle, &want_output);
      // All inputs fully planned and read.
      EXPECT_EQ(s.maps, want_maps);
      EXPECT_EQ(s.input_bytes, plan.input_bytes);
      // Output/shuffle bytes match the cost model exactly — losers of
      // speculative races must not double-count.
      EXPECT_EQ(s.shuffle_bytes, want_shuffle);
      EXPECT_EQ(s.output_bytes, want_output);
      EXPECT_EQ(s.reduces, plan.reducers);
    }
    // Shared-output accounting: on BSFS every reduce commits by exactly
    // one concurrent append; on HDFS every reduce falls back to a part
    // file that the serialized concat pass consumes. Exactly one of the
    // two mechanisms fires, exactly reducers times.
    if (plan.shared_output && plan.kind != JobPlan::kRtw) {
      if (use_bsfs) {
        EXPECT_EQ(s.shared_appends, plan.reducers);
        EXPECT_EQ(s.concat_parts, 0u);
        EXPECT_GE(s.shared_append_bytes, s.output_bytes);
      } else {
        EXPECT_EQ(s.concat_parts, plan.reducers);
        EXPECT_EQ(s.shared_appends, 0u);
        EXPECT_EQ(s.concat_bytes, s.output_bytes);
      }
    } else {
      EXPECT_EQ(s.shared_appends, 0u);
      EXPECT_EQ(s.concat_parts, 0u);
    }
    // Intermediate-store accounting: every committed reduce's input came
    // out of the store (re-fetches after a re-execution add, never
    // subtract), and every committed map materialized its partitions at
    // least once. Generator jobs never touch the store.
    if (plan.kind == JobPlan::kRtw) {
      EXPECT_EQ(s.intermediate_bytes_written, 0u);
      EXPECT_EQ(s.intermediate_bytes_read, 0u);
      EXPECT_EQ(s.fetch_failures, 0u);
      EXPECT_EQ(s.maps_reexecuted, 0u);
    } else {
      uint64_t want_maps2 = 0, want_shuffle2 = 0, want_output2 = 0;
      const MapReduceApp& capp =
          plan.kind == JobPlan::kGrep
              ? static_cast<const MapReduceApp&>(grep)
              : static_cast<const MapReduceApp&>(sort_app);
      expected_cost(plan, capp, &want_maps2, &want_shuffle2, &want_output2);
      EXPECT_GE(s.intermediate_bytes_read, s.shuffle_bytes);
      EXPECT_GE(s.intermediate_bytes_written, want_shuffle2);
    }
    // Every committed map has exactly one locality attribution — lost
    // commits revoked theirs, re-executions re-attributed.
    EXPECT_EQ(s.data_local_maps + s.rack_local_maps + s.remote_maps, s.maps);
    // The scheduler never hands tasks to the node the detector saw die.
    ASSERT_FALSE(s.launches.empty());
    for (const auto& l : s.launches) {
      EXPECT_NE(l.node, victim) << "task launched on detected-dead node";
    }
  }

  // On-disk invariants: shared jobs leave ONE shared file holding at least
  // the job's logical output (exactly the appended bytes on BSFS) and no
  // part-r files; nobody leaks _attempts/ temp files.
  struct DirCheck {
    std::vector<std::string> names;
    std::optional<uint64_t> shared_size;
    std::vector<std::string> leftovers;
  };
  std::vector<DirCheck> checks(plans.size());
  auto inspect = [](fs::FileSystem* f, const std::vector<JobPlan>* ps,
                    std::vector<DirCheck>* out) -> sim::Task<void> {
    auto client = f->make_client(0);
    for (size_t j = 0; j < ps->size(); ++j) {
      const std::string& dir = (*ps)[j].output_dir;
      (*out)[j].names = co_await client->list(dir);
      auto st = co_await client->stat(dir + "/output-shared");
      if (st.has_value()) (*out)[j].shared_size = st->size;
      (*out)[j].leftovers = co_await client->list(dir + "/_attempts");
    }
  };
  sim.spawn(inspect(&fs, &plans, &checks));
  sim.run();
  for (size_t j = 0; j < plans.size(); ++j) {
    const JobPlan& plan = plans[j];
    const DirCheck& c = checks[j];
    SCOPED_TRACE("dir check, job " + std::to_string(j));
    EXPECT_TRUE(c.leftovers.empty()) << c.leftovers.size() << " temp leaks";
    if (plan.shared_output && plan.kind != JobPlan::kRtw) {
      ASSERT_TRUE(c.shared_size.has_value());
      if (use_bsfs) {
        EXPECT_EQ(*c.shared_size, stats[j].shared_append_bytes);
      } else {
        EXPECT_EQ(*c.shared_size, stats[j].output_bytes);
      }
      EXPECT_GE(*c.shared_size, stats[j].output_bytes);
      for (const auto& name : c.names) {
        EXPECT_EQ(name.find("part-r-"), std::string::npos)
            << "part file in shared mode: " << name;
      }
    } else {
      EXPECT_FALSE(c.shared_size.has_value());
    }
  }
}

// --- durability spectrum fuzz -------------------------------------------
//
// Property: under a random DurabilityPolicy and a random power-cycle
// schedule, the write-path ack contract holds at both storage sites.
//   * kImmediate never loses an acked record (site accounting agrees);
//   * kBatched loses at most the configured window per power cycle —
//     max_records acked-beyond-sync plus the batch in flight on the disk;
//   * every record either acked or was refused — nobody hangs.
// The client keeps its own ledger of acks and audits survivors end-to-end
// (has_page / has_block after recovery), independent of the sites' loss
// counters.

struct DurabilityPlan {
  DurabilityPolicy policy;
  uint64_t record_bytes = 0;
  uint64_t records = 0;
  std::vector<std::pair<double, double>> cycles;  // (crash at, outage secs)
};

DurabilityPlan random_durability_plan(Rng& rng) {
  DurabilityPlan plan;
  const uint64_t level = rng.below(3);
  const uint64_t max_records = 4 + rng.below(29);
  const double max_delay = 0.002 + rng.uniform() * 0.02;
  plan.policy = level == 0   ? DurabilityPolicy::none()
                : level == 1 ? DurabilityPolicy::batched(max_records, max_delay)
                             : DurabilityPolicy::immediate();
  plan.record_bytes = kBlock * (1 + rng.below(8));
  plan.records = 150 + rng.below(100);
  const int cycles = 1 + static_cast<int>(rng.below(2));
  double at = 0.05 + rng.uniform() * 0.1;
  for (int c = 0; c < cycles; ++c) {
    const double outage = 0.1 + rng.uniform() * 0.3;
    plan.cycles.emplace_back(at, outage);
    at += outage + 0.1 + rng.uniform() * 0.2;
  }
  return plan;
}

sim::Task<void> provider_stream(blob::Provider* p, const DurabilityPlan* plan,
                                std::vector<uint8_t>* acked) {
  for (uint64_t i = 0; i < plan->records; ++i) {
    const bool ok = co_await p->put_page(
        0, blob::PageKey{7, i, 1},
        DataSpec::pattern(i, 0, plan->record_bytes));
    (*acked)[i] = ok ? 1 : 2;
  }
}

sim::Task<void> provider_cycles(sim::Simulator* sim, blob::BlobSeerCluster* b,
                                const DurabilityPlan* plan, net::NodeId node) {
  double now = 0;
  for (const auto& [at, outage] : plan->cycles) {
    co_await sim->delay(at - now);
    b->crash_provider(node, /*wipe_storage=*/false);
    co_await sim->delay(outage);
    b->recover_provider(node);
    now = at + outage;
  }
}

sim::Task<void> datanode_stream(hdfs::DataNode* dn, const DurabilityPlan* plan,
                                std::vector<uint8_t>* acked) {
  for (uint64_t i = 0; i < plan->records; ++i) {
    const bool ok = co_await dn->receive_block(
        0, static_cast<hdfs::BlockId>(i + 1),
        DataSpec::pattern(i, 0, plan->record_bytes));
    (*acked)[i] = ok ? 1 : 2;
  }
}

sim::Task<void> datanode_cycles(sim::Simulator* sim, hdfs::Hdfs* h,
                                const DurabilityPlan* plan, net::NodeId node) {
  double now = 0;
  for (const auto& [at, outage] : plan->cycles) {
    co_await sim->delay(at - now);
    h->crash_datanode(node, /*wipe_storage=*/false);
    co_await sim->delay(outage);
    h->recover_datanode(node);
    now = at + outage;
  }
}

void run_durability_iteration(const std::string& backend, uint64_t seed) {
  SCOPED_TRACE(backend + " durability seed=" + std::to_string(seed));
  Rng rng(seed);
  const DurabilityPlan plan = random_durability_plan(rng);
  SCOPED_TRACE(std::string("level=") +
               durability_level_name(plan.policy.level) +
               " window=" + std::to_string(plan.policy.max_records) +
               " cycles=" + std::to_string(plan.cycles.size()));

  sim::Simulator sim;
  net::ClusterConfig ncfg;
  ncfg.num_nodes = 4;
  ncfg.nodes_per_rack = 4;
  net::Network net(sim, ncfg);
  const net::NodeId node = 1;
  const bool use_bsfs = backend == "BSFS";

  std::vector<uint8_t> acked(plan.records, 0);
  uint64_t lost_acked_bytes = 0;
  uint64_t site_acked_lost = 0;

  if (use_bsfs) {
    blob::BlobSeerConfig bcfg;
    bcfg.provider.durability = plan.policy;
    blob::BlobSeerCluster blobs(sim, net, std::move(bcfg));
    blob::Provider& p = blobs.provider_on(node);
    sim.spawn(provider_stream(&p, &plan, &acked));
    sim.spawn(provider_cycles(&sim, &blobs, &plan, node));
    sim.run();
    for (uint64_t i = 0; i < plan.records; ++i) {
      if (acked[i] == 1 && !p.has_page(blob::PageKey{7, i, 1})) {
        lost_acked_bytes += plan.record_bytes;
      }
    }
    site_acked_lost = p.acked_bytes_lost_on_power_loss();
  } else {
    hdfs::HdfsConfig hcfg;
    hcfg.namenode.block_size = kBlock;
    hcfg.datanode_durability = plan.policy;
    hdfs::Hdfs h(sim, net, std::move(hcfg));
    hdfs::DataNode& dn = h.datanode_on(node);
    sim.spawn(datanode_stream(&dn, &plan, &acked));
    sim.spawn(datanode_cycles(&sim, &h, &plan, node));
    sim.run();
    for (uint64_t i = 0; i < plan.records; ++i) {
      if (acked[i] == 1 &&
          !dn.has_block(static_cast<hdfs::BlockId>(i + 1))) {
        lost_acked_bytes += plan.record_bytes;
      }
    }
    site_acked_lost = dn.acked_bytes_lost_on_power_loss();
  }

  // Liveness: every record's ack settled one way or the other.
  for (uint64_t i = 0; i < plan.records; ++i) EXPECT_NE(acked[i], 0);

  switch (plan.policy.level) {
    case DurabilityLevel::kImmediate:
      // The strong promise: nothing acked was lost, and the site's own
      // accounting agrees with the client's audit.
      EXPECT_EQ(lost_acked_bytes, 0u);
      EXPECT_EQ(site_acked_lost, 0u);
      break;
    case DurabilityLevel::kBatched: {
      // Bounded loss: per power cycle at most max_records acked records
      // beyond the last sync plus the in-flight batch.
      const uint64_t bound = plan.cycles.size() * 2 * plan.policy.max_records *
                             plan.record_bytes;
      EXPECT_LE(lost_acked_bytes, bound);
      EXPECT_LE(site_acked_lost, bound);
      break;
    }
    case DurabilityLevel::kNone:
      // No promise to audit — but the run must still terminate with every
      // ack settled (checked above) and survivors readable.
      break;
  }
}

TEST(MrFuzz, DurabilitySpectrumHoldsAckContractOnBsfs) {
  for (int i = 0; i < 2 * kIterations; ++i) {
    run_durability_iteration("BSFS", 0xd00dULL + static_cast<uint64_t>(i));
  }
}

TEST(MrFuzz, DurabilitySpectrumHoldsAckContractOnHdfs) {
  for (int i = 0; i < 2 * kIterations; ++i) {
    run_durability_iteration("HDFS", 0xd00dULL + static_cast<uint64_t>(i));
  }
}

TEST(MrFuzz, RandomJobMixesHoldInvariantsOnBsfs) {
  for (int i = 0; i < kIterations; ++i) {
    run_iteration("BSFS", 0xf002ULL + static_cast<uint64_t>(i));
  }
}

TEST(MrFuzz, RandomJobMixesHoldInvariantsOnHdfs) {
  for (int i = 0; i < kIterations; ++i) {
    run_iteration("HDFS", 0xf002ULL + static_cast<uint64_t>(i));
  }
}

}  // namespace
}  // namespace bs::mr
