// MapReduce engine v2 tests: fair sharing across concurrent jobs,
// locality preservation per job, speculative execution against throttled
// (slow) nodes, loser-kill output commit semantics, slowstart overlap,
// and liveness-aware task placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "common/wordlist.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "mr/scheduler.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;

struct SchedWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;

  SchedWorld()
      : net(sim,
            [] {
              net::ClusterConfig c;
              c.num_nodes = 8;
              c.nodes_per_rack = 4;
              return c;
            }()),
        blobs(sim, net, {}), ns(sim, net, {}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kBlock / 4,
                              .replication = 1, .enable_cache = true}) {}
};

// WordCount semantics with tiny processing rates, so task runtimes are long
// enough for the straggler detector to sample progress differences.
class SlowWordCount final : public MapReduceApp {
 public:
  std::string name() const override { return "slow-wordcount"; }
  void map(uint64_t, const std::string& line, Emitter& out) override {
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() ||
          std::isspace(static_cast<unsigned char>(line[i]))) {
        if (i > start) out.emit(line.substr(start, i - start), "1");
        start = i + 1;
      }
    }
  }
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) override {
    uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    out.emit(key, std::to_string(total));
  }
  double map_rate_bps() const override { return 64e3; }
  double reduce_rate_bps() const override { return 64e3; }
  double map_selectivity() const override { return 1.1; }
  double output_ratio() const override { return 0.05; }
};

// Cost-model app with slow maps (about 0.5 s per 4 KiB block), used to make
// scheduling decisions observable at test scale.
class SlowCostApp final : public MapReduceApp {
 public:
  std::string name() const override { return "slow-cost"; }
  double map_rate_bps() const override { return 8192; }
  double map_selectivity() const override { return 0.5; }
  double reduce_rate_bps() const override { return 1e6; }
  double output_ratio() const override { return 1.0; }
};

sim::Task<void> put_pattern(fs::FileSystem* f, std::string path,
                            uint64_t bytes) {
  auto client = f->make_client(0);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::pattern(7, 0, bytes));
  co_await writer->close();
}

sim::Task<void> put_text(fs::FileSystem* f, std::string path,
                         std::string text) {
  auto client = f->make_client(0);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::from_string(std::move(text)));
  co_await writer->close();
}

sim::Task<void> run_one(MapReduceCluster* mr, JobConfig jc, JobStats* out) {
  *out = co_await mr->run_job(std::move(jc));
}

double first_launch_time(const JobStats& s) {
  double t = -1;
  for (const auto& l : s.launches) {
    if (t < 0 || l.time < t) t = l.time;
  }
  return t;
}

// Runs two identical 24-map cost jobs submitted back-to-back under the
// given policy; returns their stats.
std::pair<JobStats, JobStats> run_two_jobs(SchedulerKind kind) {
  SchedWorld w;
  w.sim.spawn(put_pattern(&w.bsfs, "/in/a", kBlock * 24));
  w.sim.spawn(put_pattern(&w.bsfs, "/in/b", kBlock * 24));
  w.sim.run();

  SlowCostApp app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.map_slots = 1;
  mcfg.reduce_slots = 1;
  mcfg.scheduler = kind;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);

  auto make_jc = [&](const std::string& in, const std::string& out_dir) {
    JobConfig jc;
    jc.input_files = {in};
    jc.output_dir = out_dir;
    jc.app = &app;
    jc.num_reducers = 1;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    return jc;
  };
  JobStats a, b;
  w.sim.spawn(run_one(&mr, make_jc("/in/a", "/out/a"), &a));
  w.sim.spawn(run_one(&mr, make_jc("/in/b", "/out/b"), &b));
  w.sim.run();
  return {a, b};
}

TEST(FairScheduler, SplitsSlotsBetweenConcurrentJobs) {
  const auto [fifo_a, fifo_b] = run_two_jobs(SchedulerKind::kFifo);
  const auto [fair_a, fair_b] = run_two_jobs(SchedulerKind::kFair);

  ASSERT_EQ(fifo_a.maps, 24u);
  ASSERT_EQ(fifo_b.maps, 24u);
  ASSERT_EQ(fair_a.maps, 24u);
  ASSERT_EQ(fair_b.maps, 24u);

  // FIFO: job A hogs every slot; B's first task waits for A's map phase to
  // drain. Fair: both jobs get tasks running from the first heartbeats.
  const double fifo_gap = first_launch_time(fifo_b) - first_launch_time(fifo_a);
  const double fair_gap = first_launch_time(fair_b) - first_launch_time(fair_a);
  EXPECT_GT(fifo_gap, 0.5);
  EXPECT_LT(fair_gap, 0.25);
  EXPECT_LT(fair_gap, fifo_gap);

  // No starvation under fair sharing: identical jobs finish close together.
  const double fair_end_a = fair_a.submit_time + fair_a.duration;
  const double fair_end_b = fair_b.submit_time + fair_b.duration;
  const double spread = std::abs(fair_end_a - fair_end_b);
  EXPECT_LT(spread, 0.3 * std::max(fair_a.duration, fair_b.duration));
  // Under FIFO the first job finishes well before the second.
  const double fifo_end_a = fifo_a.submit_time + fifo_a.duration;
  const double fifo_end_b = fifo_b.submit_time + fifo_b.duration;
  EXPECT_LT(fifo_end_a, fifo_end_b - 0.5);
}

TEST(FairScheduler, LocalityPreservedPerJob) {
  SchedWorld w;
  w.sim.spawn(put_pattern(&w.bsfs, "/in/a", kBlock * 16));
  w.sim.spawn(put_pattern(&w.bsfs, "/in/b", kBlock * 16));
  w.sim.run();

  SlowCostApp app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.scheduler = SchedulerKind::kFair;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobStats a, b;
  auto make_jc = [&](const std::string& in, const std::string& out_dir) {
    JobConfig jc;
    jc.input_files = {in};
    jc.output_dir = out_dir;
    jc.app = &app;
    jc.num_reducers = 1;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    return jc;
  };
  w.sim.spawn(run_one(&mr, make_jc("/in/a", "/out/a"), &a));
  w.sim.spawn(run_one(&mr, make_jc("/in/b", "/out/b"), &b));
  w.sim.run();

  for (const JobStats* s : {&a, &b}) {
    EXPECT_EQ(s->data_local_maps + s->rack_local_maps + s->remote_maps,
              s->maps);
    // Locality-aware selection still holds with two jobs contending.
    EXPECT_GE(s->data_local_maps + s->rack_local_maps, s->maps / 2);
  }
}

// Shared setup for the speculation tests: a two-tracker world where node 1
// is severely throttled (disk, NIC, and CPU all 16x slower).
JobStats run_throttled_wordcount(bool speculation, std::string* corpus_out,
                                 std::map<std::string, uint64_t>* expect_out) {
  SchedWorld w;
  Rng rng(91);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 6) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  if (corpus_out != nullptr) *corpus_out = text;
  if (expect_out != nullptr) *expect_out = expect;
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();

  w.net.set_node_perf(1, net::NodePerf{1.0 / 16, 1.0 / 16, 1.0 / 16});

  SlowWordCount app;
  MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.speculative_execution = speculation;
  mcfg.speculative_min_runtime_s = 0.05;
  mcfg.speculation_interval_s = 0.05;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  // Verify the application output is exact regardless of speculation.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);

  // Exactly one committed part-r file per reduce task, and JobStats
  // output_bytes equals the bytes actually in the committed files (no
  // double-counted bytes from losing attempts).
  std::vector<std::pair<std::string, uint64_t>> parts;
  auto check = [](fs::FileSystem* f,
                  std::vector<std::pair<std::string, uint64_t>>* out)
      -> sim::Task<void> {
    auto client = f->make_client(0);
    auto names = co_await client->list("/out");
    for (const auto& name : names) {
      if (name.find("part-r-") == std::string::npos) continue;
      auto st = co_await client->stat(name);
      if (st.has_value()) out->emplace_back(name, st->size);
    }
  };
  w.sim.spawn(check(&w.bsfs, &parts));
  w.sim.run();
  EXPECT_EQ(parts.size(), 2u);
  uint64_t file_bytes = 0;
  for (const auto& [name, size] : parts) file_bytes += size;
  EXPECT_EQ(file_bytes, stats.output_bytes);
  return stats;
}

TEST(Speculation, BackupAttemptLaunchedForThrottledNode) {
  JobStats on = run_throttled_wordcount(true, nullptr, nullptr);
  EXPECT_GE(on.speculative_maps + on.speculative_reduces, 1u);
  EXPECT_GE(on.speculative_wins, 1u);
  EXPECT_GE(on.killed_attempts, 1u);

  JobStats off = run_throttled_wordcount(false, nullptr, nullptr);
  EXPECT_EQ(off.speculative_maps + off.speculative_reduces, 0u);
  EXPECT_EQ(off.killed_attempts, 0u);
  // Backup tasks rescue the work stuck on the slow node.
  EXPECT_LT(on.duration, off.duration);
}

TEST(Speculation, LoserKillLeavesSingleCommittedOutputPerTask) {
  // Generator maps write real files: the commit-by-rename path must leave
  // exactly one part file per task and no temp leftovers. The throttled
  // node is made extreme (64x) so its attempts are still running when the
  // pending queue drains — the precondition for the straggler sweep.
  SchedWorld w;
  w.net.set_node_perf(1, net::NodePerf{1.0 / 64, 1.0 / 64, 1.0 / 64});

  RandomTextWriter app(kBlock);
  MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.speculative_execution = true;
  mcfg.speculative_min_runtime_s = 0.05;
  mcfg.speculation_interval_s = 0.05;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_generator_maps = 8;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, 8u);
  EXPECT_GE(stats.speculative_maps, 1u);
  EXPECT_GE(stats.killed_attempts, 1u);

  // Every part file exists exactly once with the full payload; losers'
  // temp files are gone.
  int present = 0;
  std::vector<std::string> leftovers;
  auto check = [](fs::FileSystem* f, int* out,
                  std::vector<std::string>* tmp) -> sim::Task<void> {
    auto client = f->make_client(2);
    auto names = co_await client->list("/out");
    for (const auto& name : names) {
      auto st = co_await client->stat(name);
      if (st.has_value() && !st->is_dir && st->size >= kBlock) ++*out;
    }
    *tmp = co_await client->list("/out/_attempts");
    co_return;
  };
  w.sim.spawn(check(&w.bsfs, &present, &leftovers));
  w.sim.run();
  EXPECT_EQ(present, 8);
  EXPECT_TRUE(leftovers.empty()) << leftovers.size() << " temp files leaked";

  // Output bytes are counted once per committed task.
  EXPECT_GE(stats.output_bytes, 8 * kBlock);
  EXPECT_LT(stats.output_bytes, 2 * 8 * kBlock);
}

TEST(SharedOutput, SpeculativeLosersNeverAppendDuplicateBlocks) {
  // kSharedAppend under speculation: reduces append to ONE shared file, so
  // first-finisher-wins must be arbitrated BEFORE the append — a loser
  // that appended anyway would leave a duplicate block that no rename race
  // could take back. The throttled node guarantees a backup/loser exists.
  SchedWorld w;
  Rng rng(91);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 6) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  w.sim.spawn(put_text(&w.bsfs, "/in", text));
  w.sim.run();
  w.net.set_node_perf(1, net::NodePerf{1.0 / 16, 1.0 / 16, 1.0 / 16});

  SlowWordCount app;
  MrConfig mcfg;
  mcfg.tasktracker_nodes = {1, 2};
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.speculative_execution = true;
  mcfg.speculative_min_runtime_s = 0.05;
  mcfg.speculation_interval_s = 0.05;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  jc.output_mode = JobConfig::OutputMode::kSharedAppend;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  // Results are exact despite the speculative race.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  // Every reduce committed by exactly one concurrent append; no fallback.
  EXPECT_EQ(stats.shared_appends, 2u);
  EXPECT_EQ(stats.concat_parts, 0u);

  // On disk: one shared file whose size equals the appended bytes exactly
  // (a duplicate block would show up as excess size), no part-r files, no
  // temp leftovers.
  std::vector<std::string> names;
  uint64_t shared_size = 0;
  std::vector<std::string> leftovers;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* out,
                  uint64_t* size,
                  std::vector<std::string>* tmp) -> sim::Task<void> {
    auto client = f->make_client(2);
    *out = co_await client->list("/out");
    auto st = co_await client->stat("/out/output-shared");
    if (st.has_value()) *size = st->size;
    *tmp = co_await client->list("/out/_attempts");
  };
  w.sim.spawn(check(&w.bsfs, &names, &shared_size, &leftovers));
  w.sim.run();
  EXPECT_EQ(shared_size, stats.shared_append_bytes);
  EXPECT_GE(shared_size, stats.output_bytes);
  for (const auto& name : names) {
    EXPECT_EQ(name.find("part-r-"), std::string::npos)
        << "part file in shared-append mode: " << name;
  }
  EXPECT_TRUE(leftovers.empty()) << leftovers.size() << " temp files leaked";
}

TEST(SharedOutput, HdfsFallsBackToSerializedConcat) {
  // The same job against HDFS: append_shared() is refused (§II.C), so the
  // reduces commit part files and the engine concatenates them into the
  // shared file afterwards — same final layout, serialized cost.
  sim::Simulator sim;
  net::ClusterConfig ncfg;
  ncfg.num_nodes = 8;
  ncfg.nodes_per_rack = 4;
  net::Network net(sim, ncfg);
  hdfs::Hdfs hdfs_fs(sim, net,
                     hdfs::HdfsConfig{.namenode = {.node = 0,
                                                   .service_time_s = 150e-6,
                                                   .block_size = kBlock,
                                                   .replication = 1,
                                                   .placement_seed = 7}});
  Rng rng(91);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 6) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  sim.spawn(put_text(&hdfs_fs, "/in", text));
  sim.run();

  SlowWordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  MapReduceCluster mr(sim, net, hdfs_fs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  jc.output_mode = JobConfig::OutputMode::kSharedAppend;
  JobStats stats;
  sim.spawn(run_one(&mr, std::move(jc), &stats));
  sim.run();

  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(stats.shared_appends, 0u);
  EXPECT_EQ(stats.concat_parts, 2u);
  EXPECT_EQ(stats.concat_bytes, stats.output_bytes);
  EXPECT_GT(stats.concat_s, 0.0);

  // Final layout matches the live path: one shared file holding all output
  // bytes, the part files consumed by the concat.
  std::vector<std::string> names;
  uint64_t shared_size = 0;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* out,
                  uint64_t* size) -> sim::Task<void> {
    auto client = f->make_client(2);
    *out = co_await client->list("/out");
    auto st = co_await client->stat("/out/output-shared");
    if (st.has_value()) *size = st->size;
  };
  sim.spawn(check(&hdfs_fs, &names, &shared_size));
  sim.run();
  EXPECT_EQ(shared_size, stats.output_bytes);
  for (const auto& name : names) {
    EXPECT_EQ(name.find("part-r-"), std::string::npos)
        << "part file survived the concat: " << name;
  }
}

TEST(Shuffle, ParallelCopiesIsPerJobWithEngineWideDefault) {
  // mapred.reduce.parallel.copies is a per-job setting in Hadoop:
  // JobConfig::shuffle_parallel_copies overrides the engine-wide
  // MrConfig value, 0 inherits it.
  auto run_with = [](uint32_t per_job_copies) {
    SchedWorld w;
    w.sim.spawn(put_pattern(&w.bsfs, "/in", kBlock * 24));
    w.sim.run();
    SlowCostApp app;
    MrConfig mcfg;
    mcfg.heartbeat_s = 0.05;
    mcfg.task_startup_s = 0.01;
    mcfg.shuffle_parallel_copies = 4;  // the engine-wide default
    MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
    JobConfig jc;
    jc.input_files = {"/in"};
    jc.output_dir = "/out";
    jc.app = &app;
    jc.num_reducers = 1;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    jc.shuffle_parallel_copies = per_job_copies;
    JobStats stats;
    w.sim.spawn(run_one(&mr, std::move(jc), &stats));
    w.sim.run();
    return stats;
  };
  const JobStats inherited = run_with(0);
  const JobStats explicit4 = run_with(4);
  const JobStats serial = run_with(1);
  // 0 = inherit: byte-identical to spelling the engine default out.
  EXPECT_EQ(debug_string(inherited), debug_string(explicit4));
  // Same work either way...
  EXPECT_EQ(serial.shuffle_bytes, inherited.shuffle_bytes);
  EXPECT_EQ(serial.output_bytes, inherited.output_bytes);
  // ...but serializing the copy phase (24 per-map fetches one at a time,
  // each paying the map-side disk positioning cost) takes longer.
  EXPECT_GT(serial.duration, inherited.duration);
}

TEST(Shuffle, DfsIntermediatesRunOnHdfsToo) {
  // IntermediateMode::kDfs over the HDFS baseline: map outputs become
  // NameNode files under _intermediate/, the shuffle reads them back, the
  // job-drain sweep removes them — and the results stay exact.
  sim::Simulator sim;
  net::ClusterConfig ncfg;
  ncfg.num_nodes = 8;
  ncfg.nodes_per_rack = 4;
  net::Network net(sim, ncfg);
  hdfs::Hdfs hdfs_fs(sim, net,
                     hdfs::HdfsConfig{.namenode = {.node = 0,
                                                   .service_time_s = 150e-6,
                                                   .block_size = kBlock,
                                                   .replication = 1,
                                                   .placement_seed = 7}});
  Rng rng(91);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 6) {
    std::string line = random_sentence(rng, 1 + rng.below(8));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }
  sim.spawn(put_text(&hdfs_fs, "/in", text));
  sim.run();

  SlowWordCount app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  MapReduceCluster mr(sim, net, hdfs_fs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 512;
  jc.intermediate_mode = IntermediateMode::kDfs;
  JobStats stats;
  sim.spawn(run_one(&mr, std::move(jc), &stats));
  sim.run();

  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
  EXPECT_GT(stats.intermediate_bytes_written, 0u);
  EXPECT_EQ(stats.intermediate_bytes_read, stats.shuffle_bytes);
  EXPECT_EQ(stats.fetch_failures, 0u);

  // The intermediate files were swept when the job drained.
  std::vector<std::string> leftovers;
  bool dir_gone = false;
  auto check = [](fs::FileSystem* f, std::vector<std::string>* out,
                  bool* gone) -> sim::Task<void> {
    auto client = f->make_client(1);
    *out = co_await client->list("/out/_intermediate");
    auto st = co_await client->stat("/out/_intermediate");
    *gone = !st.has_value();
  };
  sim.spawn(check(&hdfs_fs, &leftovers, &dir_gone));
  sim.run();
  EXPECT_TRUE(leftovers.empty())
      << leftovers.size() << " intermediate files leaked";
  EXPECT_TRUE(dir_gone);
}

TEST(Slowstart, ReducesOverlapMapPhase) {
  auto run_with = [](double slowstart) {
    SchedWorld w;
    w.sim.spawn(put_pattern(&w.bsfs, "/in", kBlock * 24));
    w.sim.run();
    SlowCostApp app;
    MrConfig mcfg;
    mcfg.heartbeat_s = 0.05;
    mcfg.task_startup_s = 0.01;
    mcfg.reduce_slowstart = slowstart;
    MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
    JobConfig jc;
    jc.input_files = {"/in"};
    jc.output_dir = "/out";
    jc.app = &app;
    jc.num_reducers = 2;
    jc.cost_model = true;
    jc.record_read_size = kBlock;
    JobStats stats;
    w.sim.spawn(run_one(&mr, std::move(jc), &stats));
    w.sim.run();
    return stats;
  };
  const JobStats serial = run_with(1.0);
  const JobStats overlapped = run_with(0.1);
  ASSERT_EQ(serial.maps, 24u);
  ASSERT_EQ(overlapped.maps, 24u);
  // With slowstart the first reduce launches while maps are still running.
  const double serial_map_end = serial.submit_time + serial.map_phase_s;
  const double over_map_end = overlapped.submit_time + overlapped.map_phase_s;
  EXPECT_GE(serial.first_reduce_start, serial_map_end);
  EXPECT_LT(overlapped.first_reduce_start, over_map_end);
  // Same work either way.
  EXPECT_EQ(serial.shuffle_bytes, overlapped.shuffle_bytes);
  EXPECT_EQ(serial.output_bytes, overlapped.output_bytes);
}

struct FixedLiveness final : net::LivenessView {
  std::set<net::NodeId> dead;
  bool is_up(net::NodeId node) const override { return dead.count(node) == 0; }
};

TEST(Liveness, DeadNodesGetNoTasks) {
  SchedWorld w;
  w.sim.spawn(put_pattern(&w.bsfs, "/in", kBlock * 12));
  w.sim.run();

  FixedLiveness view;
  view.dead = {2, 5};
  SlowCostApp app;
  MrConfig mcfg;
  mcfg.heartbeat_s = 0.05;
  mcfg.task_startup_s = 0.01;
  mcfg.liveness = &view;
  MapReduceCluster mr(w.sim, w.net, w.bsfs, mcfg);
  JobConfig jc;
  jc.input_files = {"/in"};
  jc.output_dir = "/out";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.cost_model = true;
  jc.record_read_size = kBlock;
  JobStats stats;
  w.sim.spawn(run_one(&mr, std::move(jc), &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, 12u);
  ASSERT_FALSE(stats.launches.empty());
  for (const auto& l : stats.launches) {
    EXPECT_NE(l.node, 2u);
    EXPECT_NE(l.node, 5u);
  }
}

}  // namespace
}  // namespace bs::mr
