// ShuffleStore unit tests (mr/shuffle.h): the intermediate-data subsystem
// in isolation — local-disk spills that die with their node's incarnation,
// DFS-backed intermediates that survive crashes through replication, and
// the job-drain cleanup of _intermediate/ files. Both storage back-ends.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "hdfs/hdfs.h"
#include "mr/shuffle.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;

net::ClusterConfig small_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 12;
  cfg.nodes_per_rack = 4;
  cfg.rpc_timeout_s = 0.5;
  return cfg;
}

MapOutput sample_output(net::NodeId node, uint32_t attempt,
                        std::vector<uint64_t> partition_bytes) {
  MapOutput out;
  out.node = node;
  out.attempt = attempt;
  out.partition_bytes = std::move(partition_bytes);
  return out;
}

template <typename Fn>
void run(sim::Simulator& sim, Fn body) {
  auto wrap = [](Fn f) -> sim::Task<void> { co_await f(); };
  sim.spawn(wrap(std::move(body)));
  sim.run();
}

// ---------- LocalDiskShuffleStore ----------

struct LocalWorld {
  sim::Simulator sim;
  net::Network net;
  LocalDiskShuffleStore store;
  LocalWorld() : net(sim, small_net()), store(sim, net) {}
};

TEST(LocalDiskShuffle, SpillAndFetchMoveTheBytes) {
  LocalWorld w;
  EXPECT_TRUE(w.store.crash_loses_output());
  MapOutput m = sample_output(3, 0, {6000, 2000});
  uint64_t written = 0;
  bool wrote = false;
  bool fetched = false;
  run(w.sim, [&]() -> sim::Task<void> {
    wrote = co_await w.store.write_map_output("/out", 0, &m, &written);
    fetched = co_await w.store.fetch_partition("/out", 0, m, 0, /*dst=*/5);
  });
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(fetched);
  EXPECT_EQ(written, 8000u);
  // The spill landed on the mapper's disk; the fetch re-read partition 0
  // there and streamed it over the network.
  EXPECT_NEAR(w.net.disk(3).bytes_written(), 8000, 1e-6);
  EXPECT_NEAR(w.net.disk(3).bytes_read(), 6000, 1e-6);
  EXPECT_NEAR(w.net.bytes_moved(), 6000, 1e-6);
}

TEST(LocalDiskShuffle, FetchFailsAgainstPoweredOffNode) {
  LocalWorld w;
  MapOutput m = sample_output(3, 0, {4096});
  bool fetched = true;
  double started = 0;
  run(w.sim, [&]() -> sim::Task<void> {
    uint64_t written = 0;
    co_await w.store.write_map_output("/out", 0, &m, &written);
    w.net.set_node_up(3, false);
    started = w.sim.now();
    fetched = co_await w.store.fetch_partition("/out", 0, m, 0, /*dst=*/5);
  });
  EXPECT_FALSE(fetched);
  // The reducer paid the connection timeout learning the node is dead.
  EXPECT_NEAR(w.sim.now() - started, small_net().rpc_timeout_s, 1e-9);
}

TEST(LocalDiskShuffle, RebootedNodeServesNothingFromBeforeTheCrash) {
  // Job-local spill directories do not survive a tasktracker loss: a node
  // that crashed and recovered is up and answers promptly, but the spill
  // belongs to the previous incarnation and the fetch must fail — this is
  // exactly what forces the JobTracker to re-execute the completed map.
  LocalWorld w;
  MapOutput m = sample_output(3, 0, {4096});
  bool fetched = true;
  run(w.sim, [&]() -> sim::Task<void> {
    uint64_t written = 0;
    co_await w.store.write_map_output("/out", 0, &m, &written);
    w.net.set_node_up(3, false);
    w.net.set_node_up(3, true);  // reboot, node healthy again
    fetched = co_await w.store.fetch_partition("/out", 0, m, 0, /*dst=*/5);
  });
  EXPECT_FALSE(fetched);
  // A fresh spill on the new incarnation serves fine.
  MapOutput fresh = sample_output(3, 1, {4096});
  bool refetched = false;
  run(w.sim, [&]() -> sim::Task<void> {
    uint64_t written = 0;
    co_await w.store.write_map_output("/out", 0, &fresh, &written);
    refetched = co_await w.store.fetch_partition("/out", 0, fresh, 0, 5);
  });
  EXPECT_TRUE(refetched);
}

TEST(LocalDiskShuffle, SpillFailsWhenNodeIsDown) {
  LocalWorld w;
  w.net.set_node_up(3, false);
  MapOutput m = sample_output(3, 0, {4096});
  bool wrote = true;
  uint64_t written = 0;
  run(w.sim, [&]() -> sim::Task<void> {
    wrote = co_await w.store.write_map_output("/out", 0, &m, &written);
  });
  EXPECT_FALSE(wrote);
  EXPECT_EQ(written, 0u);
}

// ---------- DfsShuffleStore, parameterized over the storage back-end ----

struct DfsWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;
  hdfs::Hdfs hdfs;

  DfsWorld()
      : net(sim, small_net()), blobs(sim, net, {}), ns(sim, net, {}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kBlock / 4,
                              .replication = 1, .enable_cache = true}),
        hdfs(sim, net,
             hdfs::HdfsConfig{.namenode = {.node = 0,
                                           .service_time_s = 150e-6,
                                           .block_size = kBlock,
                                           .replication = 1,
                                           .placement_seed = 7}}) {}

  fs::FileSystem& backend(const std::string& name) {
    return name == "BSFS" ? static_cast<fs::FileSystem&>(bsfs)
                          : static_cast<fs::FileSystem&>(hdfs);
  }
};

class DfsShuffleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DfsShuffleTest, WriteFetchAndCleanupLifecycle) {
  DfsWorld w;
  fs::FileSystem& fs = w.backend(GetParam());
  DfsShuffleStore store(w.sim, w.net, fs, /*replication=*/0);
  EXPECT_FALSE(store.crash_loses_output());

  MapOutput m = sample_output(3, 2, {kBlock, 0, kBlock / 2});
  uint64_t written = 0;
  bool wrote = false;
  run(w.sim, [&]() -> sim::Task<void> {
    wrote = co_await store.write_map_output("/out", 7, &m, &written);
  });
  EXPECT_TRUE(wrote);
  EXPECT_EQ(written, kBlock + kBlock / 2);

  // One file per non-empty partition, under _intermediate/, attempt-
  // qualified names.
  std::vector<std::string> names;
  run(w.sim, [&]() -> sim::Task<void> {
    auto client = fs.make_client(0);
    names = co_await client->list("/out/_intermediate");
  });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(),
                      DfsShuffleStore::partition_path("/out", 7, 2, 0)),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      DfsShuffleStore::partition_path("/out", 7, 2, 2)),
            names.end());

  // Fetches stream the partitions through the ordinary FS read path.
  bool f0 = false, f2 = false;
  run(w.sim, [&]() -> sim::Task<void> {
    f0 = co_await store.fetch_partition("/out", 7, m, 0, /*dst=*/5);
    f2 = co_await store.fetch_partition("/out", 7, m, 2, /*dst=*/9);
  });
  EXPECT_TRUE(f0);
  EXPECT_TRUE(f2);

  // Job-drain sweep: files and the directory entry are gone.
  bool dir_gone = false;
  run(w.sim, [&]() -> sim::Task<void> {
    co_await store.cleanup("/out", 0);
    auto client = fs.make_client(0);
    names = co_await client->list("/out/_intermediate");
    auto st = co_await client->stat("/out/_intermediate");
    dir_gone = !st.has_value();
  });
  EXPECT_TRUE(names.empty());
  EXPECT_TRUE(dir_gone);
}

INSTANTIATE_TEST_SUITE_P(Backends, DfsShuffleTest,
                         ::testing::Values("BSFS", "HDFS"));

TEST(DfsShuffle, ReplicatedIntermediatesSurviveAMapperNodeCrash) {
  // The paper's trade: intermediates written at replication 2 (while the
  // FS default stays 1) keep serving shuffle reads after the node that
  // wrote them — and one of the replica holders — dies, via the ordinary
  // blob failover. No re-execution machinery ever has to arm.
  DfsWorld w;
  DfsShuffleStore store(w.sim, w.net, w.bsfs, /*replication=*/2);
  MapOutput m = sample_output(3, 0, {kBlock});
  run(w.sim, [&]() -> sim::Task<void> {
    uint64_t written = 0;
    const bool ok = co_await store.write_map_output("/out", 0, &m, &written);
    EXPECT_TRUE(ok);
  });

  // Find a node actually holding the partition's pages and kill it.
  std::vector<net::NodeId> hosts;
  run(w.sim, [&]() -> sim::Task<void> {
    auto client = w.bsfs.make_client(0);
    auto locs = co_await client->locations(
        DfsShuffleStore::partition_path("/out", 0, 0, 0), 0, kBlock);
    if (!locs.empty()) hosts = locs[0].hosts;
  });
  ASSERT_GE(hosts.size(), 2u);  // the per-file degree took effect
  const net::NodeId victim = hosts[0];
  w.net.set_node_up(victim, false);
  w.blobs.crash_provider(victim, /*wipe=*/true);

  bool fetched = false;
  run(w.sim, [&]() -> sim::Task<void> {
    fetched = co_await store.fetch_partition("/out", 0, m, 0, /*dst=*/5);
  });
  EXPECT_TRUE(fetched);  // failed over to the surviving replica
}

}  // namespace
}  // namespace bs::mr
