// MapReduce framework tests: record parsing, split boundary handling,
// locality scheduling, and end-to-end application correctness over BOTH
// storage back-ends (the paper's §IV.C setup at miniature scale).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "common/wordlist.h"
#include "hdfs/hdfs.h"
#include "mr/app.h"
#include "mr/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs::mr {
namespace {

constexpr uint64_t kBlock = 4096;
constexpr uint64_t kPage = 1024;

net::ClusterConfig test_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.nodes_per_rack = 4;
  return cfg;
}

struct MrWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;
  hdfs::Hdfs hdfs;

  MrWorld()
      : net(sim, test_net()), blobs(sim, net, {}),
        ns(sim, net, bsfs::NamespaceConfig{}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kPage,
                              .replication = 1, .enable_cache = true}),
        hdfs(sim, net,
             hdfs::HdfsConfig{
                 .namenode = {.node = 15, .service_time_s = 150e-6,
                              .block_size = kBlock, .replication = 1,
                              .placement_seed = 0x8df3},
                 .stream_efficiency = 0.92}) {}

  fs::FileSystem& get(const std::string& name) {
    if (name == "BSFS") return bsfs;
    return hdfs;
  }

  MrConfig mr_config() {
    MrConfig cfg;
    cfg.heartbeat_s = 0.05;  // fast heartbeats keep tiny tests quick
    cfg.task_startup_s = 0.01;
    return cfg;
  }
};

sim::Task<bool> put_text(fs::FileSystem& f, net::NodeId node, std::string path,
                         std::string text) {
  auto client = f.make_client(node);
  auto writer = co_await client->create(path);
  if (!writer) co_return false;
  const bool wrote = co_await writer->write(DataSpec::from_string(text));
  if (!wrote) co_return false;
  co_return co_await writer->close();
}

sim::Task<std::string> get_text(fs::FileSystem& f, net::NodeId node,
                                std::string path) {
  auto client = f.make_client(node);
  auto reader = co_await client->open(path);
  if (!reader) co_return std::string("<missing>");
  auto all = co_await reader->read(0, reader->size());
  auto bytes = all.materialize();
  co_return std::string(bytes.begin(), bytes.end());
}

TEST(ForEachLine, SplitsAndReportsOffsets) {
  std::vector<std::pair<uint64_t, std::string>> lines;
  for_each_line("aa\nbbb\n\ncc", 100, [&](uint64_t off, const std::string& l) {
    lines.emplace_back(off, l);
  });
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], (std::pair<uint64_t, std::string>{100, "aa"}));
  EXPECT_EQ(lines[1], (std::pair<uint64_t, std::string>{103, "bbb"}));
  EXPECT_EQ(lines[2], (std::pair<uint64_t, std::string>{107, ""}));
  EXPECT_EQ(lines[3], (std::pair<uint64_t, std::string>{108, "cc"}));
}

class MrBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MrBackendTest, WordCountMatchesReference) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  // Build input with known counts; lines will straddle block boundaries.
  Rng rng(17);
  std::string text;
  std::map<std::string, uint64_t> expect;
  while (text.size() < kBlock * 3) {
    std::string line = random_sentence(rng, 1 + rng.below(10));
    std::istringstream is(line);
    std::string word;
    while (is >> word) ++expect[word];
    text += line;
  }

  bool wrote = false;
  auto setup = [](fs::FileSystem& fsys, std::string text_in,
                  bool* ok) -> sim::Task<void> {
    *ok = co_await put_text(fsys, 0, "/in/words", std::move(text_in));
  };
  w.sim.spawn(setup(f, text, &wrote));
  w.sim.run();
  ASSERT_TRUE(wrote);

  WordCount app;
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.input_files = {"/in/words"};
  jc.output_dir = "/out/wc";
  jc.app = &app;
  jc.num_reducers = 3;
  jc.record_read_size = 512;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, (text.size() + kBlock - 1) / kBlock);  // one per block
  EXPECT_EQ(stats.reduces, 3u);
  EXPECT_EQ(stats.input_bytes, text.size());
  EXPECT_GT(stats.duration, 0.0);

  // Collect the counts from the reduce outputs.
  std::map<std::string, uint64_t> got;
  for (const auto& [k, v] : stats.results) got[k] = std::stoull(v);
  EXPECT_EQ(got, expect);
}

TEST_P(MrBackendTest, DistributedGrepFindsAllOccurrences) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  Rng rng(23);
  std::string text;
  uint64_t expect = 0;
  const std::string needle = "needle";
  while (text.size() < kBlock * 2) {
    if (rng.chance(0.1)) {
      text += "xx needle yy needle zz\n";
      expect += 2;
    } else {
      text += random_sentence(rng, 6);
    }
  }
  bool wrote = false;
  auto setup = [](fs::FileSystem& fsys, std::string t, bool* ok) -> sim::Task<void> {
    *ok = co_await put_text(fsys, 1, "/in/hay", std::move(t));
  };
  w.sim.spawn(setup(f, text, &wrote));
  w.sim.run();
  ASSERT_TRUE(wrote);

  DistributedGrep app(needle);
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.input_files = {"/in/hay"};
  jc.output_dir = "/out/grep";
  jc.app = &app;
  jc.num_reducers = 1;
  jc.record_read_size = 512;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  ASSERT_EQ(stats.results.size(), 1u);
  EXPECT_EQ(stats.results[0].first, needle);
  EXPECT_EQ(std::stoull(stats.results[0].second), expect);
  // Output file exists and contains the same result.
  std::string out_text;
  auto check = [](fs::FileSystem& fsys, std::string* out) -> sim::Task<void> {
    *out = co_await get_text(fsys, 2, "/out/grep/part-r-00000");
  };
  w.sim.spawn(check(f, &out_text));
  w.sim.run();
  EXPECT_EQ(out_text, needle + "\t" + std::to_string(expect) + "\n");
}

TEST_P(MrBackendTest, RandomTextWriterProducesOutputFiles) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  RandomTextWriter app(kBlock + 100);  // ~1 block per map
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.output_dir = "/out/rtw";
  jc.app = &app;
  jc.num_generator_maps = 6;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, 6u);
  EXPECT_EQ(stats.reduces, 0u);  // map-only
  EXPECT_GE(stats.output_bytes, 6 * (kBlock + 100));

  // Every part file exists, has at least the target size, and is made of
  // vocabulary words.
  std::set<std::string> vocab(word_list().begin(), word_list().end());
  for (int i = 0; i < 6; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "/out/rtw/part-m-%05d", i);
    std::string text;
    auto check = [](fs::FileSystem& fsys, std::string path,
                    std::string* out) -> sim::Task<void> {
      *out = co_await get_text(fsys, 3, path);
    };
    w.sim.spawn(check(f, name, &text));
    w.sim.run();
    ASSERT_GE(text.size(), kBlock + 100) << name;
    std::istringstream is(text);
    std::string word;
    int checked = 0;
    while (is >> word && checked++ < 50) {
      EXPECT_TRUE(vocab.count(word)) << word;
    }
  }
}

TEST_P(MrBackendTest, SortRoundtripsAllRecords) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  Rng rng(31);
  std::string text;
  std::multiset<std::string> expect;
  for (int i = 0; i < 300; ++i) {
    std::string line = "key" + std::to_string(rng.below(1000));
    expect.insert(line);
    text += line + "\n";
  }
  bool wrote = false;
  auto setup = [](fs::FileSystem& fsys, std::string t, bool* ok) -> sim::Task<void> {
    *ok = co_await put_text(fsys, 0, "/in/sort", std::move(t));
  };
  w.sim.spawn(setup(f, text, &wrote));
  w.sim.run();
  ASSERT_TRUE(wrote);

  SortApp app;
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.input_files = {"/in/sort"};
  jc.output_dir = "/out/sort";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.record_read_size = 256;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  std::multiset<std::string> got;
  for (const auto& [k, v] : stats.results) got.insert(k);
  EXPECT_EQ(got, expect);
}

TEST_P(MrBackendTest, LocalityCountersAccountForAllMaps) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  bool wrote = false;
  auto setup = [](fs::FileSystem& fsys, bool* ok) -> sim::Task<void> {
    auto client = fsys.make_client(0);
    auto writer = co_await client->create("/in/data");
    co_await writer->write(DataSpec::pattern(1, 0, kBlock * 8));
    *ok = co_await writer->close();
  };
  w.sim.spawn(setup(f, &wrote));
  w.sim.run();
  ASSERT_TRUE(wrote);

  DistributedGrep app("zzz");
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.input_files = {"/in/data"};
  jc.output_dir = "/out/loc";
  jc.app = &app;
  jc.num_reducers = 1;
  jc.cost_model = true;  // content irrelevant here
  jc.record_read_size = kBlock;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, 8u);
  EXPECT_EQ(stats.data_local_maps + stats.rack_local_maps + stats.remote_maps,
            stats.maps);
  // With 16 trackers and 8 splits spread over the cluster, locality-aware
  // scheduling should place most maps on or near their data.
  EXPECT_GE(stats.data_local_maps + stats.rack_local_maps, stats.maps / 2);
}

TEST_P(MrBackendTest, CostModelJobCompletesWithModeledTime) {
  MrWorld w;
  fs::FileSystem& f = w.get(GetParam());
  bool wrote = false;
  auto setup = [](fs::FileSystem& fsys, bool* ok) -> sim::Task<void> {
    auto client = fsys.make_client(0);
    auto writer = co_await client->create("/in/cost");
    co_await writer->write(DataSpec::pattern(1, 0, kBlock * 4));
    *ok = co_await writer->close();
  };
  w.sim.spawn(setup(f, &wrote));
  w.sim.run();
  ASSERT_TRUE(wrote);

  SortApp app;  // selectivity 1.0: shuffle == input
  MapReduceCluster mr(w.sim, w.net, f, w.mr_config());
  JobConfig jc;
  jc.input_files = {"/in/cost"};
  jc.output_dir = "/out/cost";
  jc.app = &app;
  jc.num_reducers = 2;
  jc.cost_model = true;
  jc.record_read_size = 1024;
  JobStats stats;
  auto run = [](MapReduceCluster& m, JobConfig cfg, JobStats* out) -> sim::Task<void> {
    *out = co_await m.run_job(std::move(cfg));
  };
  w.sim.spawn(run(mr, jc, &stats));
  w.sim.run();

  EXPECT_EQ(stats.maps, 4u);
  EXPECT_EQ(stats.reduces, 2u);
  EXPECT_GT(stats.duration, 0.0);
  EXPECT_NEAR(static_cast<double>(stats.shuffle_bytes),
              static_cast<double>(kBlock * 4), 8.0);
  EXPECT_NEAR(static_cast<double>(stats.output_bytes),
              static_cast<double>(kBlock * 4), 8.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, MrBackendTest,
                         ::testing::Values("BSFS", "HDFS"));

}  // namespace
}  // namespace bs::mr
