// Tests for the flow-level network: exact single-flow timing, fair sharing,
// bottleneck behavior, per-flow caps, disks, and solver invariants under
// randomized load (property-style sweep).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/cluster.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace bs::net {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.nodes_per_rack = 4;
  cfg.nic_bps = 100e6;          // round numbers for exact timing checks
  cfg.rack_uplink_bps = 400e6;
  cfg.control_latency_s = 1e-3;
  cfg.disk_read_bps = 50e6;
  cfg.disk_write_bps = 40e6;
  cfg.disk_seek_s = 0.01;
  return cfg;
}

TEST(Cluster, RackMath) {
  ClusterConfig cfg;
  cfg.num_nodes = 270;
  cfg.nodes_per_rack = 30;
  EXPECT_EQ(cfg.num_racks(), 9u);
  EXPECT_EQ(cfg.rack_of(0), 0u);
  EXPECT_EQ(cfg.rack_of(29), 0u);
  EXPECT_EQ(cfg.rack_of(30), 1u);
  EXPECT_TRUE(cfg.same_rack(0, 29));
  EXPECT_FALSE(cfg.same_rack(29, 30));
}

TEST(Network, SingleFlowUsesFullNic) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 4, 100e6);  // cross-rack, 100 MB at 100 MB/s
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, TwoFlowsShareSourceNic) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n, NodeId dst) -> sim::Task<void> {
    co_await n.transfer(0, dst, 50e6);
  };
  sim.spawn(proc(net, 4));
  sim.spawn(proc(net, 5));
  sim.run();
  // Both flows share node 0's 100e6 uplink: 50 MB each at 50 MB/s.
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, TwoFlowsShareDestinationNic) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n, NodeId src) -> sim::Task<void> {
    co_await n.transfer(src, 7, 50e6);
  };
  sim.spawn(proc(net, 0));
  sim.spawn(proc(net, 1));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, IndependentFlowsDoNotInterfere) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n, NodeId src, NodeId dst) -> sim::Task<void> {
    co_await n.transfer(src, dst, 100e6);
  };
  sim.spawn(proc(net, 0, 4));
  sim.spawn(proc(net, 1, 5));
  sim.spawn(proc(net, 2, 6));
  sim.run();
  // Disjoint node pairs, uplink has room for 4 NIC-rate flows.
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, RackUplinkBecomesBottleneck) {
  sim::Simulator sim;
  auto cfg = small_config();
  cfg.rack_uplink_bps = 150e6;  // < 2 NICs' worth
  Network net(sim, cfg);
  auto proc = [](Network& n, NodeId src, NodeId dst) -> sim::Task<void> {
    co_await n.transfer(src, dst, 75e6);
  };
  sim.spawn(proc(net, 0, 4));
  sim.spawn(proc(net, 1, 5));
  sim.run();
  // Two flows share the 150e6 uplink: 75 MB at 75 MB/s each.
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, SameRackAvoidsUplink) {
  sim::Simulator sim;
  auto cfg = small_config();
  cfg.rack_uplink_bps = 1;  // effectively dead uplink
  Network net(sim, cfg);
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 1, 100e6);  // same rack
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, MaxMinBeatsEqualSplitForUnevenDemand) {
  // Flow A (0→4) is capped elsewhere; flow B (1→4) should get the rest of
  // the destination NIC, not a naive 50%.
  sim::Simulator sim;
  Network net(sim, small_config());
  double b_done = -1;
  auto flow_a = [](Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 4, 20e6, /*rate_cap=*/20e6);
  };
  auto flow_b = [](Network& n, double* done) -> sim::Task<void> {
    co_await n.transfer(1, 4, 80e6);
    *done = n.simulator().now();
  };
  sim.spawn(flow_a(net));
  sim.spawn(flow_b(net, &b_done));
  sim.run();
  // B gets 80 MB/s while A is active (and would finish exactly at 1.0 s).
  EXPECT_NEAR(b_done, 1.0, 1e-6);
}

TEST(Network, RateCapHoldsWithNoContention) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 4, 50e6, /*rate_cap=*/25e6);
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 2.0, 1e-9);
}

TEST(Network, LoopbackBypassesNic) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.transfer(3, 3, 100e6);
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 100e6 / small_config().loopback_bps, 1e-9);
}

TEST(Network, SequentialFlowsAccumulateTime) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) co_await n.transfer(0, 4, 100e6);
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 3.0, 1e-9);
  EXPECT_EQ(net.flows_started(), 3u);
  EXPECT_NEAR(net.bytes_moved(), 300e6, 1);
}

TEST(Network, LateArrivalSlowsExistingFlow) {
  sim::Simulator sim;
  Network net(sim, small_config());
  double first_done = -1;
  auto first = [](Network& n, double* done) -> sim::Task<void> {
    co_await n.transfer(0, 4, 100e6);
    *done = n.simulator().now();
  };
  auto second = [](Network& n) -> sim::Task<void> {
    co_await n.simulator().delay(0.5);
    co_await n.transfer(1, 4, 100e6);
  };
  sim.spawn(first(net, &first_done));
  sim.spawn(second(net));
  sim.run();
  // First: 50 MB in [0,0.5) at full rate, remaining 50 MB at half rate
  // (shared destination NIC) → done at 1.5 s.
  EXPECT_NEAR(first_done, 1.5, 1e-6);
  // Second: 50 MB at half rate until 1.5, then 50 MB at full → 2.0 s.
  EXPECT_NEAR(sim.now(), 2.0, 1e-6);
}

TEST(Network, ControlLatencyIsConstant) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) co_await n.control(0, 7);
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 4e-3, 1e-12);
}

TEST(Disk, SequentialServiceTime) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.disk(0).write(40e6);  // 1 s at 40 MB/s + 0.01 seek
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.01, 1e-9);
}

TEST(Disk, ConcurrentRequestsQueueFifo) {
  sim::Simulator sim;
  Network net(sim, small_config());
  auto proc = [](Network& n) -> sim::Task<void> {
    co_await n.disk(0).read(50e6);  // 1 s + seek each
  };
  for (int i = 0; i < 3; ++i) sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 3.03, 1e-9);
  EXPECT_NEAR(net.disk(0).bytes_read(), 150e6, 1);
}

TEST(Network, TryTransferMatchesTransferWhenHealthy) {
  sim::Simulator sim;
  Network net(sim, small_config());
  bool ok = false;
  auto proc = [](Network& n, bool* out) -> sim::Task<void> {
    *out = co_await n.try_transfer(0, 4, 100e6);
  };
  sim.spawn(proc(net, &ok));
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(Network, TryTransferFailsAgainstPoweredOffNode) {
  // The node-down RPC semantics (PR 1) apply to bulk data too: a stream
  // to or from a dead node must fail after the connection timeout, not
  // complete as if healthy — this is what feeds the MapReduce engine's
  // shuffle fetch-failure detection.
  for (const bool kill_src : {false, true}) {
    sim::Simulator sim;
    Network net(sim, small_config());
    net.set_node_up(kill_src ? 0 : 4, false);
    bool ok = true;
    auto proc = [](Network& n, bool* out) -> sim::Task<void> {
      *out = co_await n.try_transfer(0, 4, 100e6);
    };
    sim.spawn(proc(net, &ok));
    sim.run();
    EXPECT_FALSE(ok);
    // No bytes flowed; the caller only paid the connection timeout.
    EXPECT_NEAR(sim.now(), small_config().rpc_timeout_s, 1e-9);
    EXPECT_EQ(net.flows_started(), 0u);
  }
}

TEST(Network, TryTransferFailsWhenEndpointDiesMidStream) {
  sim::Simulator sim;
  Network net(sim, small_config());
  bool ok = true;
  auto proc = [](Network& n, bool* out) -> sim::Task<void> {
    *out = co_await n.try_transfer(0, 4, 100e6);  // 1 s at NIC rate
  };
  auto killer = [](Network& n) -> sim::Task<void> {
    co_await n.simulator().delay(0.5);
    n.set_node_up(4, false);  // receiver dies halfway
  };
  sim.spawn(proc(net, &ok));
  sim.spawn(killer(net));
  sim.run();
  EXPECT_FALSE(ok);  // the bytes landed on a dead node: fetch failed
}

TEST(Network, TryTransferFailsWhenEndpointPowerCyclesMidStream) {
  // Crash AND recovery inside the stream's lifetime: both endpoints look
  // up at completion, but the receiver rebooted — whatever it was
  // accumulating is gone, so the transfer must still report failure
  // (incarnation comparison, not just the up flag).
  sim::Simulator sim;
  Network net(sim, small_config());
  bool ok = true;
  auto proc = [](Network& n, bool* out) -> sim::Task<void> {
    *out = co_await n.try_transfer(0, 4, 100e6);  // 1 s at NIC rate
  };
  auto cycler = [](Network& n) -> sim::Task<void> {
    co_await n.simulator().delay(0.4);
    n.set_node_up(4, false);
    co_await n.simulator().delay(0.2);
    n.set_node_up(4, true);  // back before the stream ends
  };
  sim.spawn(proc(net, &ok));
  sim.spawn(cycler(net));
  sim.run();
  EXPECT_FALSE(ok);
}

TEST(Disk, TryOpsFailOnPoweredOffNode) {
  sim::Simulator sim;
  Network net(sim, small_config());
  net.set_node_up(0, false);
  bool read_ok = true;
  bool write_ok = true;
  auto proc = [](Network& n, bool* r, bool* w) -> sim::Task<void> {
    *r = co_await n.try_disk_read(0, 50e6);
    *w = co_await n.try_disk_write(0, 40e6);
  };
  sim.spawn(proc(net, &read_ok, &write_ok));
  sim.run();
  EXPECT_FALSE(read_ok);
  EXPECT_FALSE(write_ok);
  // A dead node issues no I/O at all (and pays no disk service time).
  EXPECT_NEAR(net.disk(0).bytes_read(), 0, 1e-9);
  EXPECT_NEAR(net.disk(0).bytes_written(), 0, 1e-9);
  EXPECT_NEAR(sim.now(), 0.0, 1e-9);
}

TEST(Network, PowerLossBumpsIncarnation) {
  sim::Simulator sim;
  Network net(sim, small_config());
  EXPECT_EQ(net.incarnation(3), 0u);
  net.set_node_up(3, false);
  EXPECT_EQ(net.incarnation(3), 1u);
  net.set_node_up(3, false);  // already down: not a new power loss
  EXPECT_EQ(net.incarnation(3), 1u);
  net.set_node_up(3, true);   // recovery alone does not bump
  EXPECT_EQ(net.incarnation(3), 1u);
  net.set_node_up(3, false);
  EXPECT_EQ(net.incarnation(3), 2u);
}

TEST(Rpc, RoundTripCostsTwoLatencies) {
  sim::Simulator sim;
  Network net(sim, small_config());
  int result = 0;
  auto proc = [](Network& n, int* out) -> sim::Task<void> {
    *out = co_await rpc(n, 0, 7, [&n]() -> sim::Task<int> {
      co_await n.simulator().delay(0.1);  // server-side work
      co_return 99;
    });
  };
  sim.spawn(proc(net, &result));
  sim.run();
  EXPECT_EQ(result, 99);
  EXPECT_NEAR(sim.now(), 0.1 + 2e-3, 1e-9);
}

TEST(ServiceQueue, SerializesAndQueues) {
  sim::Simulator sim;
  Network net(sim, small_config());
  ServiceQueue svc(sim, 0.1);
  auto proc = [](ServiceQueue& s) -> sim::Task<void> { co_await s.process(); };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(svc));
  sim.run();
  EXPECT_NEAR(sim.now(), 0.5, 1e-9);
  EXPECT_EQ(svc.requests(), 5u);
}

// Property sweep: under randomized concurrent transfers, conservation holds:
// simulated completion time must be bounded below by every aggregate
// capacity constraint, and all bytes must arrive.
class NetworkLoadTest : public ::testing::TestWithParam<int> {};

TEST_P(NetworkLoadTest, ConservationAndCompletion) {
  const int seed = GetParam();
  Rng rng(seed);
  sim::Simulator sim;
  auto cfg = small_config();
  Network net(sim, cfg);

  const int num_flows = 20 + static_cast<int>(rng.below(30));
  double total_bytes = 0;
  std::vector<double> node_rx(cfg.num_nodes, 0), node_tx(cfg.num_nodes, 0);
  auto proc = [](Network& n, NodeId s, NodeId d, double bytes,
                 double start) -> sim::Task<void> {
    co_await n.simulator().delay(start);
    co_await n.transfer(s, d, bytes);
  };
  for (int i = 0; i < num_flows; ++i) {
    const NodeId s = static_cast<NodeId>(rng.below(cfg.num_nodes));
    NodeId d = static_cast<NodeId>(rng.below(cfg.num_nodes));
    if (d == s) d = (d + 1) % cfg.num_nodes;
    const double bytes = 1e6 + rng.uniform() * 50e6;
    const double start = rng.uniform() * 0.2;
    total_bytes += bytes;
    node_rx[d] += bytes;
    node_tx[s] += bytes;
    sim.spawn(proc(net, s, d, bytes, start));
  }
  sim.run();

  EXPECT_NEAR(net.bytes_moved(), total_bytes, 1.0);
  // Lower bound: the busiest NIC must move its bytes at NIC rate.
  double lower_bound = 0;
  for (uint32_t n = 0; n < cfg.num_nodes; ++n) {
    lower_bound = std::max(lower_bound, node_rx[n] / cfg.nic_bps);
    lower_bound = std::max(lower_bound, node_tx[n] / cfg.nic_bps);
  }
  EXPECT_GE(sim.now(), lower_bound - 1e-6);
  // Upper bound sanity: serializing everything through one NIC.
  EXPECT_LE(sim.now(), 0.2 + total_bytes / cfg.nic_bps + 1.0);
  EXPECT_EQ(net.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkLoadTest, ::testing::Range(1, 9));

// --- incremental solver vs. legacy oracle (PR 9) ---------------------------

// Randomized flow churn (staggered arrivals and departures, repeated paths,
// per-flow caps) with a probe that repeatedly solves the LIVE flow set with
// both backends and records the worst relative rate difference. Both code
// paths are compiled into every build; this is the standing proof that the
// path-class solver computes the same max-min allocation as the full
// per-flow progressive filling it replaced.
class SolverOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverOracleTest, IncrementalRatesMatchFullSolveUnderChurn) {
  Rng rng(GetParam());
  sim::Simulator sim;
  auto cfg = small_config();
  cfg.per_stream_cap_bps = 30e6;  // caps bind on some rounds, not all
  Network net(sim, cfg);
  // The oracle comparison is only meaningful with the incremental solver
  // live; under the BS_LEGACY_SOLVER=1 sweep both sides would be legacy.
  if (net.legacy_solver()) GTEST_SKIP() << "BS_LEGACY_SOLVER forces legacy";

  auto xfer = [](Network& n, NodeId s, NodeId d, double bytes, double cap,
                 double start) -> sim::Task<void> {
    co_await n.simulator().delay(start);
    co_await n.transfer(s, d, bytes, cap);
  };
  const int num_flows = 60;
  for (int i = 0; i < num_flows; ++i) {
    // Half the flows reuse one of 6 fixed pairs (same-path classes with
    // several members); the rest are random pairs.
    NodeId s, d;
    if (i % 2 == 0) {
      s = static_cast<NodeId>(i % 6);
      d = static_cast<NodeId>((i % 6 + 4) % cfg.num_nodes);
    } else {
      s = static_cast<NodeId>(rng.below(cfg.num_nodes));
      d = static_cast<NodeId>(rng.below(cfg.num_nodes));
      if (d == s) d = (d + 1) % cfg.num_nodes;
    }
    const double bytes = 1e6 + rng.uniform() * 40e6;
    const double cap = (i % 5 == 0) ? 10e6 + rng.uniform() * 40e6 : 0;
    const double start = rng.uniform() * 1.5;
    sim.spawn(xfer(net, s, d, bytes, cap, start));
  }
  double max_rel_diff = 0;
  auto probe = [](Network& n, double* worst) -> sim::Task<void> {
    for (int k = 0; k < 80; ++k) {
      co_await n.simulator().delay(0.05);
      if (n.active_flows() == 0) continue;
      *worst = std::max(*worst, n.solver_oracle_max_rel_diff());
    }
  };
  sim.spawn(probe(net, &max_rel_diff));
  sim.run();

  EXPECT_LT(max_rel_diff, 1e-9);
  EXPECT_EQ(net.active_flows(), 0u);
  const SolverStats stats = net.solver_stats();
  EXPECT_GT(stats.class_solves, 0u);
  EXPECT_GT(stats.path_classes_created, 0u);
  // Aggregation actually happened: fewer classes than flows.
  EXPECT_LT(stats.path_classes_created, net.flows_started());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOracleTest, ::testing::Range(1, 6));

TEST(Network, BackendsAgreeOnCompletionTimesAndBytes) {
  // The same randomized workload through both solver backends must produce
  // the same physics: equal bytes moved and completion times within float
  // round-off (class-aggregated arithmetic may differ by ~1 ulp).
  auto run_backend = [](bool legacy) {
    Rng rng(1234);
    sim::Simulator sim;
    auto cfg = small_config();
    cfg.legacy_solver = legacy;
    Network net(sim, cfg);
    auto xfer = [](Network& n, NodeId s, NodeId d, double bytes,
                   double start) -> sim::Task<void> {
      co_await n.simulator().delay(start);
      co_await n.transfer(s, d, bytes);
    };
    for (int i = 0; i < 40; ++i) {
      const NodeId s = static_cast<NodeId>(rng.below(8));
      NodeId d = static_cast<NodeId>(rng.below(8));
      if (d == s) d = (d + 1) % 8;
      sim.spawn(xfer(net, s, d, 1e6 + rng.uniform() * 30e6,
                     rng.uniform() * 0.5));
    }
    sim.run();
    return std::pair<double, double>(sim.now(), net.bytes_moved());
  };
  const auto legacy = run_backend(true);
  const auto incremental = run_backend(false);
  EXPECT_NEAR(incremental.first, legacy.first,
              1e-9 * std::max(1.0, legacy.first));
  EXPECT_DOUBLE_EQ(incremental.second, legacy.second);
}

TEST(Network, RetimeDampingSkipsUnchangedDeadlines) {
  // A batch of same-instant arrivals between independent pairs: each flush
  // re-solve leaves the earliest completion unchanged once it is set, so
  // damping must absorb retimes that the legacy backend would schedule.
  sim::Simulator sim;
  Network net(sim, small_config());
  // Damping is an incremental-backend behavior; legacy always reschedules.
  if (net.legacy_solver()) GTEST_SKIP() << "BS_LEGACY_SOLVER forces legacy";
  auto xfer = [](Network& n, NodeId s, NodeId d, double start,
                 double bytes) -> sim::Task<void> {
    co_await n.simulator().delay(start);
    co_await n.transfer(s, d, bytes);
  };
  // t=0: flow A (0→4, 100 MB at a 100 MB/s NIC) completes at exactly 1.0.
  // At t=0.25 and t=0.5 (binary-exact instants, so the recomputed deadline
  // is bit-identical), larger flows arrive on independent NIC pairs; the
  // shared 400 MB/s uplink still leaves everyone at NIC rate, so each
  // arrival's re-solve leaves the earliest completion pinned at 1.0 and
  // the retime must be damped instead of rescheduled.
  sim.spawn(xfer(net, 0, 4, 0, 100e6));
  sim.spawn(xfer(net, 1, 5, 0.25, 150e6));
  sim.spawn(xfer(net, 2, 6, 0.5, 150e6));
  sim.run();
  const SolverStats stats = net.solver_stats();
  EXPECT_GT(stats.retimes_damped, 0u);
}

}  // namespace
}  // namespace bs::net
