// Observability plane unit tests: instrument semantics, canonical label
// ordering, snapshot determinism, the tracer ring buffer, and the Chrome
// trace-event export (validated with a small standalone JSON parser — the
// export must load in chrome://tracing / Perfetto, so structural validity
// is part of the contract).
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace bs {
namespace {

using obs::Labels;
using obs::MetricsRegistry;

// --- mini JSON validator (structure only; enough to catch malformed
// emission: unbalanced braces, bad escapes, trailing commas) ---

struct JsonScanner {
  const std::string& s;
  size_t at = 0;

  void ws() {
    while (at < s.size() && (s[at] == ' ' || s[at] == '\t' || s[at] == '\n' ||
                             s[at] == '\r')) {
      ++at;
    }
  }
  bool eat(char c) {
    ws();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (at >= s.size() || s[at] != '"') return false;
    ++at;
    while (at < s.size() && s[at] != '"') {
      if (s[at] == '\\') {
        ++at;
        if (at >= s.size()) return false;
        const char e = s[at];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++at;
            if (at >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[at]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s[at]) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++at;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const size_t start = at;
    if (at < s.size() && s[at] == '-') ++at;
    while (at < s.size() && (std::isdigit(static_cast<unsigned char>(s[at])) ||
                             s[at] == '.' || s[at] == 'e' || s[at] == 'E' ||
                             s[at] == '+' || s[at] == '-')) {
      ++at;
    }
    return at > start;
  }
  bool literal(const char* word) {
    ws();
    const size_t n = std::strlen(word);
    if (s.compare(at, n, word) != 0) return false;
    at += n;
    return true;
  }
  bool value() {
    ws();
    if (at >= s.size()) return false;
    switch (s[at]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool valid_json(const std::string& text) {
  JsonScanner scan{text};
  if (!scan.value()) return false;
  scan.ws();
  return scan.at == text.size() ||
         (scan.at + 1 == text.size() && text.back() == '\n');
}

TEST(ObsJson, EscapeCoversControlAndQuoting) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_quote("k\"ey"), "\"k\\\"ey\"");
  EXPECT_TRUE(valid_json(obs::json_quote("quote\" back\\slash \n \x02 end")));
}

TEST(ObsMetrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("test/count");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same name+labels resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test/count"), &c);
  EXPECT_EQ(reg.size(), 1u);

  obs::Gauge& g = reg.gauge("test/depth");
  g.set(4);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test/lat", {}, {1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty reads 0
  for (double x : {0.5, 1.5, 1.6, 3.0, 10.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 1u);      // <= 1
  EXPECT_EQ(h.bucket_counts()[1], 2u);      // (1, 2]
  EXPECT_EQ(h.bucket_counts()[2], 1u);      // (2, 5]
  EXPECT_EQ(h.bucket_counts()[3], 1u);      // overflow
  // Percentiles clamp and stay within the observed range.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
  EXPECT_GE(h.percentile(0.5), h.min());
  EXPECT_LE(h.percentile(0.99), h.max());
  EXPECT_LE(h.percentile(0.1), h.percentile(0.9));
}

TEST(ObsMetrics, CanonicalKeySortsLabels) {
  const Labels ab = {{"a", "1"}, {"b", "2"}};
  const Labels ba = {{"b", "2"}, {"a", "1"}};
  EXPECT_EQ(MetricsRegistry::canonical_key("m", ab), "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::canonical_key("m", ba), "m{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::canonical_key("m", {}), "m");

  // Label order at the call site therefore cannot fork instruments.
  MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("m", ab), &reg.counter("m", ba));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, SnapshotIsDeterministicAcrossRegistrationOrder) {
  // Two registries, same instruments and values, registered in opposite
  // orders: snapshots must agree byte-for-byte.
  auto build = [](bool reversed) {
    auto reg = std::make_unique<MetricsRegistry>();
    auto a = [&] { reg->counter("z/late", {{"rack", "1"}}).inc(7); };
    auto b = [&] {
      reg->histogram("a/early", {}, {1.0, 10.0}).observe(2.5);
      reg->gauge("m/mid").set(-3.25);
    };
    if (reversed) {
      b();
      a();
    } else {
      a();
      b();
    }
    return reg;
  };
  const auto r1 = build(false);
  const auto r2 = build(true);
  EXPECT_EQ(r1->text_snapshot(), r2->text_snapshot());
  EXPECT_EQ(r1->json_snapshot(), r2->json_snapshot());
  EXPECT_FALSE(r1->text_snapshot().empty());
  // Sorted by canonical key: a/early before m/mid before z/late.
  const std::string text = r1->text_snapshot();
  EXPECT_LT(text.find("a/early"), text.find("m/mid"));
  EXPECT_LT(text.find("m/mid"), text.find("z/late{rack=1}"));
  EXPECT_TRUE(valid_json(r1->json_snapshot())) << r1->json_snapshot();
}

sim::Task<void> record_events(sim::Simulator* sim, obs::Tracer* tracer,
                              int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim->delay(0.25);
    const double t0 = sim->now();
    co_await sim->delay(0.5);
    tracer->complete("net", "net", static_cast<uint32_t>(i % 3),
                     "span" + std::to_string(i), t0);
    tracer->instant("mr", "mr", 0, "tick" + std::to_string(i));
  }
}

TEST(ObsTrace, RingOverflowKeepsNewest) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  tracer.set_enabled(true);
  tracer.set_capacity(4);
  sim.spawn(record_events(&sim, &tracer, 5));  // 10 events into 4 slots
  sim.run();
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events[0].name, "span3");
  EXPECT_EQ(events[1].name, "tick3");
  EXPECT_EQ(events[2].name, "span4");
  EXPECT_EQ(events[3].name, "tick4");
  EXPECT_LT(events[0].ts, events[3].ts);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.5);   // complete span
  EXPECT_LT(events[1].dur, 0.0);          // instant marker
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  sim.spawn(record_events(&sim, &tracer, 3));
  sim.run();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTrace, ChromeExportIsValidJson) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  tracer.set_enabled(true);
  sim.spawn(record_events(&sim, &tracer, 4));
  sim.run();
  tracer.instant("fault", "fault", 2, "with \"quotes\"",
                 "\"bytes\":123,\"wipe\":true");

  const std::string doc = tracer.chrome_json("world0");
  EXPECT_TRUE(valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // instants
  // Metadata names every process (node) and thread (component).
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("world0"), std::string::npos);
  // Span durations land in trace microseconds (0.5 s -> 500000 us).
  EXPECT_NE(doc.find("\"dur\":500000.000"), std::string::npos);

  // Merged-export plumbing: a second export continues the same array.
  std::string merged;
  bool first = true;
  tracer.export_chrome(&merged, 0, "w0", &first);
  tracer.export_chrome(&merged, 1000, "w1", &first);
  const std::string wrapped = "[" + merged + "]";
  EXPECT_TRUE(valid_json(wrapped));
  EXPECT_NE(merged.find("\"pid\":1002"), std::string::npos);  // w1, node 2
}

}  // namespace
}  // namespace bs
