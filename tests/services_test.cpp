// Direct unit tests for the service components: version manager semantics,
// namespace manager operations, provider RAM/LRU behavior, and the
// network's per-stream cap — paths the higher-level suites exercise only
// indirectly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blob/cluster.h"
#include "blob/provider.h"
#include "blob/version_manager.h"
#include "bsfs/namespace.h"
#include "net/network.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace bs {
namespace {

net::ClusterConfig tiny_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.nodes_per_rack = 4;
  return cfg;
}

// ---------- VersionManager ----------

TEST(VersionManager, AssignsDenseVersionsAndTracksHistory) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  blob::VersionManager vm(sim, net, {});
  std::vector<blob::WriteTicket> tickets;
  auto proc = [](blob::VersionManager& v,
                 std::vector<blob::WriteTicket>* out) -> sim::Task<void> {
    auto desc = co_await v.create_blob(1, 100, 1);
    out->push_back(co_await v.assign_write(1, desc.id, 0, 300));
    out->push_back(co_await v.assign_write(1, desc.id, 0, 100));
    out->push_back(
        co_await v.assign_write(1, desc.id,
                                blob::VersionManager::kAppendOffset, 250));
  };
  sim.spawn(proc(vm, &tickets));
  sim.run();
  ASSERT_EQ(tickets.size(), 3u);
  EXPECT_EQ(tickets[0].version, 1u);
  EXPECT_EQ(tickets[0].history.size(), 0u);
  EXPECT_EQ(tickets[0].size_after, 300u);
  EXPECT_EQ(tickets[0].cap_pages, 4u);  // 3 pages -> cap 4
  EXPECT_EQ(tickets[1].version, 2u);
  EXPECT_EQ(tickets[1].history.size(), 1u);
  EXPECT_EQ(tickets[1].size_after, 300u);  // overwrite keeps the size
  // Append resolves against the latest assigned size (300, page-aligned)
  // and may leave a short final page as the new end of the blob.
  EXPECT_EQ(tickets[2].version, 3u);
  EXPECT_EQ(tickets[2].offset, 300u);
  EXPECT_EQ(tickets[2].size_after, 550u);
  EXPECT_EQ(tickets[2].cap_pages, 8u);  // 6 pages -> cap 8
  EXPECT_EQ(tickets[2].history.size(), 2u);
}

TEST(VersionManager, PublicationRequiresCommitPrefix) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  blob::VersionManager vm(sim, net, {});
  blob::BlobId blob = 0;
  auto proc = [](blob::VersionManager& v, blob::BlobId* out) -> sim::Task<void> {
    auto desc = co_await v.create_blob(1, 100, 1);
    *out = desc.id;
    (void)co_await v.assign_write(1, desc.id, 0, 100);
    (void)co_await v.assign_write(2, desc.id, 0, 100);
    (void)co_await v.assign_write(3, desc.id, 0, 100);
    co_await v.commit(3, desc.id, 3);
    co_await v.commit(2, desc.id, 2);
  };
  sim.spawn(proc(vm, &blob));
  sim.run();
  EXPECT_EQ(vm.published_version(blob), blob::kNoVersion);  // v1 missing
  auto finish = [](blob::VersionManager& v, blob::BlobId b) -> sim::Task<void> {
    co_await v.commit(1, b, 1);
  };
  sim.spawn(finish(vm, blob));
  sim.run();
  EXPECT_EQ(vm.published_version(blob), 3u);  // all three cascade
}

TEST(VersionManager, LatestReflectsOnlyPublished) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  blob::VersionManager vm(sim, net, {});
  blob::VersionInfo before{}, after{};
  auto proc = [](blob::VersionManager& v, blob::VersionInfo* b,
                 blob::VersionInfo* a) -> sim::Task<void> {
    auto desc = co_await v.create_blob(1, 100, 1);
    auto t = co_await v.assign_write(1, desc.id, 0, 500);
    *b = co_await v.latest(1, desc.id);
    co_await v.commit(1, desc.id, t.version);
    *a = co_await v.latest(1, desc.id);
  };
  sim.spawn(proc(vm, &before, &after));
  sim.run();
  EXPECT_EQ(before.version, blob::kNoVersion);
  EXPECT_EQ(before.size, 0u);
  EXPECT_EQ(after.version, 1u);
  EXPECT_EQ(after.size, 500u);
}

// ---------- NamespaceManager ----------

TEST(Namespace, ImplicitParentDirectories) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  bsfs::NamespaceManager ns(sim, net, {});
  std::vector<std::string> root_list, a_list;
  auto proc = [](bsfs::NamespaceManager& n, std::vector<std::string>* root,
                 std::vector<std::string>* a) -> sim::Task<void> {
    co_await n.add_file(1, "/a/b/c/file", 7, 64);
    *root = co_await n.list(1, "/");
    *a = co_await n.list(1, "/a/b");
  };
  sim.spawn(proc(ns, &root_list, &a_list));
  sim.run();
  ASSERT_EQ(root_list.size(), 1u);
  EXPECT_EQ(root_list[0], "/a");
  ASSERT_EQ(a_list.size(), 1u);
  EXPECT_EQ(a_list[0], "/a/b/c");
}

TEST(Namespace, RenameMovesEntry) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  bsfs::NamespaceManager ns(sim, net, {});
  bool renamed = false, old_gone = false, found = false;
  auto proc = [](bsfs::NamespaceManager& n, bool* rn, bool* og,
                 bool* fd) -> sim::Task<void> {
    co_await n.add_file(1, "/src/f", 3, 64);
    co_await n.finalize(1, "/src/f");
    *rn = co_await n.rename(1, "/src/f", "/dst/moved");
    auto old_entry = co_await n.lookup(1, "/src/f");
    *og = !old_entry.has_value();
    auto new_entry = co_await n.lookup(1, "/dst/moved");
    *fd = new_entry.has_value() && new_entry->blob == 3;
  };
  sim.spawn(proc(ns, &renamed, &old_gone, &found));
  sim.run();
  EXPECT_TRUE(renamed);
  EXPECT_TRUE(old_gone);
  EXPECT_TRUE(found);
}

TEST(Namespace, RenameOntoExistingFails) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  bsfs::NamespaceManager ns(sim, net, {});
  bool renamed = true;
  auto proc = [](bsfs::NamespaceManager& n, bool* rn) -> sim::Task<void> {
    co_await n.add_file(1, "/a", 1, 64);
    co_await n.add_file(1, "/b", 2, 64);
    *rn = co_await n.rename(1, "/a", "/b");
  };
  sim.spawn(proc(ns, &renamed));
  sim.run();
  EXPECT_FALSE(renamed);
}

TEST(Namespace, MkdirIsIdempotentOnDirsOnly) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  bsfs::NamespaceManager ns(sim, net, {});
  bool dir_ok = false, again_ok = false, on_file = true;
  auto proc = [](bsfs::NamespaceManager& n, bool* a, bool* b,
                 bool* c) -> sim::Task<void> {
    *a = co_await n.mkdir(1, "/dir");
    *b = co_await n.mkdir(1, "/dir");
    co_await n.add_file(1, "/file", 1, 64);
    *c = co_await n.mkdir(1, "/file");
  };
  sim.spawn(proc(ns, &dir_ok, &again_ok, &on_file));
  sim.run();
  EXPECT_TRUE(dir_ok);
  EXPECT_TRUE(again_ok);
  EXPECT_FALSE(on_file);
}

// ---------- Provider RAM / LRU ----------

TEST(ProviderRam, CleanPagesEvictUnderPressure) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  blob::ProviderConfig cfg;
  cfg.node = 1;
  cfg.ram_bytes = 300;  // room for three 100-byte pages
  cfg.read_cache = true;
  blob::Provider provider(sim, net, cfg);
  uint64_t hits = 0, misses = 0;
  auto proc = [](blob::Provider& p, uint64_t* h, uint64_t* m) -> sim::Task<void> {
    // Store four pages; the flusher cleans them; the LRU can hold three.
    for (uint64_t i = 0; i < 4; ++i) {
      co_await p.put_page(0, blob::PageKey{1, i, 1},
                          DataSpec::pattern(1, i * 100, 100));
    }
    co_await p.drain();
    // Page 0 was evicted when page 3 arrived; 1..3 are resident.
    (void)co_await p.get_page(0, blob::PageKey{1, 0, 1});  // miss (disk)
    (void)co_await p.get_page(0, blob::PageKey{1, 2, 1});  // hit
    (void)co_await p.get_page(0, blob::PageKey{1, 3, 1});  // hit
    *h = p.cache_hits();
    *m = p.cache_misses();
  };
  sim.spawn(proc(provider, &hits, &misses));
  sim.run();
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 2u);
}

TEST(ProviderRam, ReadCacheOffAlwaysHitsDisk) {
  sim::Simulator sim;
  net::Network net(sim, tiny_net());
  blob::ProviderConfig cfg;
  cfg.node = 1;
  cfg.ram_bytes = 1 << 20;
  cfg.read_cache = false;
  blob::Provider provider(sim, net, cfg);
  uint64_t hits = 99, misses = 0;
  auto proc = [](blob::Provider& p, uint64_t* h, uint64_t* m) -> sim::Task<void> {
    co_await p.put_page(0, blob::PageKey{1, 0, 1}, DataSpec::pattern(1, 0, 100));
    co_await p.drain();
    for (int i = 0; i < 3; ++i) {
      (void)co_await p.get_page(0, blob::PageKey{1, 0, 1});
    }
    *h = p.cache_hits();
    *m = p.cache_misses();
  };
  sim.spawn(proc(provider, &hits, &misses));
  sim.run();
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(misses, 3u);
}

TEST(ProviderRam, DirtyPagesAreRamHitsBeforeFlush) {
  sim::Simulator sim;
  net::ClusterConfig ncfg = tiny_net();
  ncfg.disk_write_bps = 1;  // the flusher will take ~forever
  net::Network net(sim, ncfg);
  blob::ProviderConfig cfg;
  cfg.node = 1;
  cfg.ram_bytes = 1 << 20;
  blob::Provider provider(sim, net, cfg);
  uint64_t hits = 0;
  auto proc = [](blob::Provider& p, uint64_t* h) -> sim::Task<void> {
    co_await p.put_page(0, blob::PageKey{1, 0, 1}, DataSpec::pattern(1, 0, 64));
    (void)co_await p.get_page(0, blob::PageKey{1, 0, 1});
    *h = p.cache_hits();
  };
  sim.spawn(proc(provider, &hits));
  sim.run_until(1.0);  // don't wait for the 64-second flush
  EXPECT_EQ(hits, 1u);
}

// ---------- Network per-stream cap ----------

TEST(StreamCap, SingleFlowIsCapped) {
  sim::Simulator sim;
  net::ClusterConfig cfg = tiny_net();
  cfg.nic_bps = 100e6;
  cfg.per_stream_cap_bps = 40e6;
  net::Network net(sim, cfg);
  auto proc = [](net::Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 4, 40e6);
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);  // 40 MB at the 40 MB/s cap
}

TEST(StreamCap, ParallelStreamsRecoverTheNic) {
  sim::Simulator sim;
  net::ClusterConfig cfg = tiny_net();
  cfg.nic_bps = 100e6;
  cfg.per_stream_cap_bps = 40e6;
  net::Network net(sim, cfg);
  // Two capped streams from distinct sources into one sink: 80 MB/s total.
  auto proc = [](net::Network& n, net::NodeId src) -> sim::Task<void> {
    co_await n.transfer(src, 4, 40e6);
  };
  sim.spawn(proc(net, 0));
  sim.spawn(proc(net, 1));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);  // both finish together, capped
}

TEST(StreamCap, ExplicitCapCombinesWithGlobalCap) {
  sim::Simulator sim;
  net::ClusterConfig cfg = tiny_net();
  cfg.nic_bps = 100e6;
  cfg.per_stream_cap_bps = 40e6;
  net::Network net(sim, cfg);
  auto proc = [](net::Network& n) -> sim::Task<void> {
    co_await n.transfer(0, 4, 20e6, /*rate_cap=*/20e6);  // tighter of the two
  };
  sim.spawn(proc(net));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

}  // namespace
}  // namespace bs
