// Tests for the coroutine discrete-event engine: task composition, timing,
// synchronization primitives, determinism, and structured concurrency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/order_audit.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace bs::sim {
namespace {

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  double finished_at = -1;
  auto proc = [](Simulator& s, double* out) -> Task<void> {
    co_await s.delay(1.5);
    co_await s.delay(2.5);
    *out = s.now();
  };
  sim.spawn(proc(sim, &finished_at));
  sim.run();
  EXPECT_DOUBLE_EQ(finished_at, 4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>* ord, double dt,
                 int id) -> Task<void> {
    co_await s.delay(dt);
    ord->push_back(id);
  };
  sim.spawn(proc(sim, &order, 3.0, 3));
  sim.spawn(proc(sim, &order, 1.0, 1));
  sim.spawn(proc(sim, &order, 2.0, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>* ord, int id) -> Task<void> {
    co_await s.delay(1.0);
    ord->push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(sim, &order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedTasksReturnValues) {
  Simulator sim;
  int result = 0;
  auto inner = [](Simulator& s) -> Task<int> {
    co_await s.delay(1);
    co_return 21;
  };
  auto outer = [&inner](Simulator& s, int* out) -> Task<void> {
    const int a = co_await inner(s);
    const int b = co_await inner(s);
    *out = a + b;
  };
  sim.spawn(outer(sim, &result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, DeepTaskChainDoesNotOverflowStack) {
  // The O(1)-stack claim rests on symmetric transfer compiling to a tail
  // call; ASan's instrumentation suppresses that optimization in GCC, so
  // under it the 100k chain really does recurse on the native stack.
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "symmetric-transfer tail call is defeated by ASan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  GTEST_SKIP() << "symmetric-transfer tail call is defeated by ASan";
#endif
#endif
  Simulator sim;
  // 100k-deep completion chain exercises symmetric transfer.
  struct Rec {
    static Task<int> count(Simulator& s, int n) {
      if (n == 0) {
        co_await s.delay(0.001);
        co_return 0;
      }
      const int sub = co_await count(s, n - 1);
      co_return sub + 1;
    }
  };
  int result = -1;
  auto proc = [](Simulator& s, int* out) -> Task<void> {
    *out = co_await Rec::count(s, 100000);
  };
  sim.spawn(proc(sim, &result));
  sim.run();
  EXPECT_EQ(result, 100000);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int steps = 0;
  auto proc = [](Simulator& s, int* count) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(1.0);
      ++*count;
    }
  };
  sim.spawn(proc(sim, &steps));
  sim.run_until(4.5);
  EXPECT_EQ(steps, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  sim.run();
  EXPECT_EQ(steps, 10);
}

TEST(Simulator, CallAtRunsCallbacks) {
  Simulator sim;
  std::vector<double> times;
  sim.call_at(2.0, [&] { times.push_back(sim.now()); });
  sim.call_at(1.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, TeardownWithLiveProcessesIsClean) {
  // A process blocked forever must be destroyed without leaks or crashes
  // when the simulator goes out of scope (ASAN-checked in CI builds).
  auto sim = std::make_unique<Simulator>();
  auto cv = std::make_unique<CondVar>(*sim);
  auto proc = [](CondVar& c) -> Task<void> {
    while (true) co_await c.wait();
  };
  sim->spawn(proc(*cv));
  sim->run();
  EXPECT_EQ(sim->live_processes(), 1u);
  sim.reset();  // destroys the suspended frame
  cv.reset();
}

TEST(Simulator, ExceptionInAwaitedTaskPropagates) {
  Simulator sim;
  bool caught = false;
  auto thrower = [](Simulator& s) -> Task<void> {
    co_await s.delay(1);
    throw std::runtime_error("boom");
  };
  auto proc = [&thrower](Simulator& s, bool* flag) -> Task<void> {
    try {
      co_await thrower(s);
    } catch (const std::runtime_error& e) {
      *flag = std::string(e.what()) == "boom";
    }
  };
  sim.spawn(proc(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int active = 0, peak = 0;
  auto worker = [](Simulator& s, Semaphore& g, int* act, int* pk) -> Task<void> {
    co_await g.acquire();
    ++*act;
    *pk = std::max(*pk, *act);
    co_await s.delay(1.0);
    --*act;
    g.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(worker(sim, sem, &active, &peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // 6 tasks, 2 wide, 1s each
}

TEST(Sync, SemaphoreIsFifo) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto worker = [](Simulator& s, Semaphore& g, std::vector<int>* ord,
                   int id) -> Task<void> {
    co_await g.acquire();
    ord->push_back(id);
    co_await s.delay(0.1);
    g.release();
  };
  for (int i = 0; i < 5; ++i) sim.spawn(worker(sim, sem, &order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, MutexGuardsReleaseOnScopeExit) {
  Simulator sim;
  Mutex mtx(sim);
  int inside = 0;
  bool overlap = false;
  auto critical = [](Simulator& s, Mutex& m, int* in, bool* ovl) -> Task<void> {
    auto guard = co_await m.lock();
    if (*in != 0) *ovl = true;
    ++*in;
    co_await s.delay(0.5);
    --*in;
    // guard released by destructor
  };
  for (int i = 0; i < 4; ++i) sim.spawn(critical(sim, mtx, &inside, &overlap));
  sim.run();
  EXPECT_FALSE(overlap);
  EXPECT_FALSE(mtx.locked());
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Sync, EventWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int woken = 0;
  auto waiter = [](Event& e, int* count) -> Task<void> {
    co_await e.wait();
    ++*count;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(ev, &woken));
  auto setter = [](Simulator& s, Event& e) -> Task<void> {
    co_await s.delay(1.0);
    e.set();
  };
  sim.spawn(setter(sim, ev));
  sim.run();
  EXPECT_EQ(woken, 3);
  // Waiting on an already-set event completes immediately.
  bool late = false;
  auto late_waiter = [](Event& e, bool* out) -> Task<void> {
    co_await e.wait();
    *out = true;
  };
  sim.spawn(late_waiter(ev, &late));
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Sync, WaitGroupJoins) {
  Simulator sim;
  WaitGroup wg(sim);
  wg.add(3);
  double joined_at = -1;
  auto worker = [](Simulator& s, WaitGroup& w, double dt) -> Task<void> {
    co_await s.delay(dt);
    w.done();
  };
  sim.spawn(worker(sim, wg, 1.0));
  sim.spawn(worker(sim, wg, 3.0));
  sim.spawn(worker(sim, wg, 2.0));
  auto joiner = [](Simulator& s, WaitGroup& w, double* at) -> Task<void> {
    co_await w.wait();
    *at = s.now();
  };
  sim.spawn(joiner(sim, wg, &joined_at));
  sim.run();
  EXPECT_DOUBLE_EQ(joined_at, 3.0);
}

TEST(Sync, ChannelDeliversInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto producer = [](Simulator& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await s.delay(0.1);
      co_await c.push(i);
    }
    c.close();
  };
  auto consumer = [](Channel<int>& c, std::vector<int>* out) -> Task<void> {
    while (true) {
      auto v = co_await c.pop();
      if (!v) break;
      out->push_back(*v);
    }
  };
  sim.spawn(producer(sim, ch));
  sim.spawn(consumer(ch, &got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, BoundedChannelAppliesBackpressure) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  double producer_done = -1;
  auto producer = [](Simulator& s, Channel<int>& c, double* done) -> Task<void> {
    for (int i = 0; i < 6; ++i) co_await c.push(i);
    *done = s.now();
    c.close();
  };
  auto consumer = [](Simulator& s, Channel<int>& c) -> Task<void> {
    while (true) {
      auto v = co_await c.pop();
      if (!v) break;
      co_await s.delay(1.0);
    }
  };
  sim.spawn(producer(sim, ch, &producer_done));
  sim.spawn(consumer(sim, ch));
  sim.run();
  // Producer must have been throttled by the consumer's pace.
  EXPECT_GT(producer_done, 2.5);
}

TEST(Parallel, WhenAllCollectsInInputOrder) {
  Simulator sim;
  auto item = [](Simulator& s, double dt, int v) -> Task<int> {
    co_await s.delay(dt);
    co_return v;
  };
  std::vector<int> result;
  auto proc = [&item](Simulator& s, std::vector<int>* out) -> Task<void> {
    std::vector<Task<int>> tasks;
    tasks.push_back(item(s, 3.0, 10));  // finishes last
    tasks.push_back(item(s, 1.0, 20));  // finishes first
    tasks.push_back(item(s, 2.0, 30));
    *out = co_await when_all(s, std::move(tasks));
  };
  sim.spawn(proc(sim, &result));
  sim.run();
  EXPECT_EQ(result, (std::vector<int>{10, 20, 30}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // parallel, not serial (6.0)
}

TEST(Parallel, WhenAllVoid) {
  Simulator sim;
  int count = 0;
  auto item = [](Simulator& s, int* c) -> Task<void> {
    co_await s.delay(1.0);
    ++*c;
  };
  auto proc = [&item](Simulator& s, int* c) -> Task<void> {
    std::vector<Task<void>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back(item(s, c));
    co_await when_all(s, std::move(tasks));
  };
  sim.spawn(proc(sim, &count));
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Parallel, WhenAllLimitedRespectsLimit) {
  Simulator sim;
  int active = 0, peak = 0;
  auto item = [](Simulator& s, int* act, int* pk) -> Task<int> {
    ++*act;
    *pk = std::max(*pk, *act);
    co_await s.delay(1.0);
    --*act;
    co_return *pk;
  };
  auto proc = [&item](Simulator& s, int* act, int* pk) -> Task<void> {
    std::vector<Task<int>> tasks;
    for (int i = 0; i < 9; ++i) tasks.push_back(item(s, act, pk));
    co_await when_all_limited(s, std::move(tasks), 3);
  };
  sim.spawn(proc(sim, &active, &peak));
  sim.run();
  EXPECT_EQ(peak, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Parallel, EmptyWhenAllCompletesImmediately) {
  Simulator sim;
  bool done = false;
  auto proc = [](Simulator& s, bool* flag) -> Task<void> {
    co_await when_all(s, std::vector<Task<void>>{});
    std::vector<Task<int>> none;
    auto res = co_await when_all(s, std::move(none));
    *flag = res.empty();
  };
  sim.spawn(proc(sim, &done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

// Determinism: two identical simulations produce identical event traces.
TEST(Simulator, RunsAreReproducible) {
  auto run_once = []() {
    Simulator sim;
    Semaphore sem(sim, 3);
    std::vector<std::pair<double, int>> trace;
    auto worker = [](Simulator& s, Semaphore& g,
                     std::vector<std::pair<double, int>>* tr, int id) -> Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await g.acquire();
        co_await s.delay(0.1 * (id % 4 + 1));
        tr->emplace_back(s.now(), id);
        g.release();
        co_await s.delay(0.01 * id);
      }
    };
    for (int i = 0; i < 20; ++i) sim.spawn(worker(sim, sem, &trace, i));
    sim.run();
    return trace;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

// --- OrderAuditor (sim/order_audit.h) --------------------------------------

// A small scenario with deliberate same-timestamp ties: three workers all
// wake at t=1.0 and t=2.0, so the seq tie-break decides their order.
Task<void> tied_worker(Simulator& s, uint64_t* sum, uint64_t w) {
  co_await s.delay(1.0);
  *sum += w;
  co_await s.delay(1.0);
  *sum += w * 10;
}

TEST(OrderAuditor, DisabledByDefaultAndCostsNothing) {
  Simulator sim;
  EXPECT_EQ(sim.order_auditor(), nullptr);
  uint64_t sum = 0;
  for (uint64_t w = 1; w <= 3; ++w) sim.spawn(tied_worker(sim, &sum, w));
  sim.run();
  EXPECT_EQ(sim.order_auditor(), nullptr);
  EXPECT_EQ(sum, 66u);
}

TEST(OrderAuditor, TieCountAndDigestAreStableAcrossIdenticalRuns) {
  auto run_once = [](uint64_t* sum) {
    Simulator sim;
    OrderAuditor& audit = sim.enable_order_audit();
    for (uint64_t w = 1; w <= 3; ++w) sim.spawn(tied_worker(sim, sum, w));
    sim.run();
    return std::tuple<uint64_t, uint64_t, uint64_t>(
        audit.digest(), audit.ties(), audit.events());
  };
  uint64_t sum_a = 0, sum_b = 0;
  const auto a = run_once(&sum_a);
  const auto b = run_once(&sum_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sum_a, sum_b);
  // Three same-time wakeups at t=1.0 and three at t=2.0: at least two ties
  // per burst (the 2nd and 3rd event of each). Spawn-time events tie too.
  EXPECT_GE(std::get<1>(a), 4u);
  EXPECT_GT(std::get<2>(a), 0u);
}

// The regression the auditor exists to catch: two schedules whose
// *observable output* is identical (a commutative sum) but whose event
// order differs. Comparing outputs alone passes; the schedule digest is
// the only check that fails — which is exactly how an order-dependent tie
// hides until some later feature reads state mid-tie.
TEST(OrderAuditor, DigestCatchesOrderSwapThatOutputsCannot) {
  // All workers tie at t=1.0, then each schedules an identity-dependent
  // follow-up. Reversing spawn order permutes which coroutine wins each
  // tie slot, so the follow-ups are *pushed* in a different order and the
  // (time, seq) stream diverges — while the sum, the final clock, and the
  // event count all come out identical.
  auto worker = [](Simulator& s, uint64_t* sum, uint64_t w) -> Task<void> {
    co_await s.delay(1.0);
    co_await s.delay(0.01 * static_cast<double>(w));
    *sum += w;
  };
  struct Outcome {
    uint64_t digest, sum, events;
    double end;
  };
  auto run_with_order = [&worker](std::vector<uint64_t> workers) {
    Simulator sim;
    OrderAuditor& audit = sim.enable_order_audit();
    uint64_t sum = 0;
    for (uint64_t w : workers) sim.spawn(worker(sim, &sum, w));
    sim.run();
    return Outcome{audit.digest(), sum, audit.events(), sim.now()};
  };
  const Outcome fwd = run_with_order({1, 2, 3});
  const Outcome rev = run_with_order({3, 2, 1});
  // Every coarse output converges: the leak is invisible to them.
  EXPECT_EQ(fwd.sum, rev.sum);
  EXPECT_EQ(fwd.events, rev.events);
  EXPECT_EQ(fwd.end, rev.end);
  // The schedule digest is not fooled.
  EXPECT_NE(fwd.digest, rev.digest);
}

TEST(OrderAuditor, DigestIsExportedThroughObsGauges) {
  Simulator sim;
  OrderAuditor& audit = sim.enable_order_audit();
  uint64_t sum = 0;
  for (uint64_t w = 1; w <= 3; ++w) sim.spawn(tied_worker(sim, &sum, w));
  sim.run();
  const std::string snap = sim.metrics().text_snapshot();
  const uint64_t hi = audit.digest() >> 32;
  const uint64_t lo = audit.digest() & 0xffffffffULL;
  EXPECT_NE(snap.find("sim/order_digest_hi " + std::to_string(hi)),
            std::string::npos)
      << snap;
  EXPECT_NE(snap.find("sim/order_digest_lo " + std::to_string(lo)),
            std::string::npos)
      << snap;
  EXPECT_NE(snap.find("sim/order_ties " + std::to_string(audit.ties())),
            std::string::npos)
      << snap;
  EXPECT_EQ(audit.digest_hex().size(), 16u);
}

// --- engine-rewrite pins (PR 9) --------------------------------------------

// Golden-schedule pin: this scenario (spawn fan-out with 8-way ties, a
// semaphore handoff chain, nested tasks, call_at callbacks interleaved with
// coroutine wakes) was recorded against the pre-rewrite event queue
// (std::function events, periodic reap). The hardcoded digest proves the
// POD-event / pooled-callback / intrusive-finished-list queue dispatches
// the EXACT same (time, seq) stream. If an engine change breaks this, it
// changed the schedule contract, not just performance.
Task<int> golden_nested(Simulator& s, int depth) {
  if (depth == 0) {
    co_await s.delay(0.125);
    co_return 1;
  }
  const int sub = co_await golden_nested(s, depth - 1);
  co_await s.delay(0.25);
  co_return sub + 1;
}

Task<void> golden_worker(Simulator& s, Semaphore& gate, int id,
                         uint64_t* sum) {
  co_await s.delay(1.0);  // 8-way tie at t=1
  co_await gate.acquire();
  co_await s.delay(0.5 * (id % 3 + 1));
  *sum += static_cast<uint64_t>(co_await golden_nested(s, id % 4));
  gate.release();
}

TEST(OrderAuditor, GoldenScheduleDigestPinnedAcrossQueueRewrite) {
  Simulator sim;
  OrderAuditor& audit = sim.enable_order_audit();
  Semaphore gate(sim, 3);
  uint64_t sum = 0;
  for (int id = 0; id < 8; ++id) sim.spawn(golden_worker(sim, gate, id, &sum));
  for (int i = 0; i < 4; ++i) {
    sim.call_at(0.5 * (i % 2 + 1), [] {});
  }
  sim.run();
  // Recorded from the pre-rewrite implementation (seed @ PR 8).
  EXPECT_EQ(audit.digest_hex(), "92aa1bff0b6737e2");
  EXPECT_EQ(audit.events(), 53u);
  EXPECT_EQ(audit.ties(), 27u);
  EXPECT_EQ(sum, 20u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.375);
}

TEST(Simulator, DetachedTaskExceptionSurfacesAtFinishingDispatch) {
  // Before the intrusive finished-list, an escaped exception in a detached
  // task sat unobserved until the next 4096-event reap scan; the simulation
  // kept running arbitrarily far past the failure. Now the rethrow happens
  // at the dispatch that finishes the task: the clock reads the failure
  // time and no later-time event has run.
  Simulator sim;
  int bystander_steps = 0;
  auto thrower = [](Simulator& s) -> Task<void> {
    co_await s.delay(1.0);
    throw std::runtime_error("escaped");
  };
  auto bystander = [](Simulator& s, int* n) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(0.3);
      ++*n;
    }
  };
  sim.spawn(bystander(sim, &bystander_steps));
  sim.spawn(thrower(sim));
  bool caught = false;
  try {
    sim.run();
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "escaped";
  }
  EXPECT_TRUE(caught);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);  // surfaced at the finishing dispatch
  EXPECT_EQ(bystander_steps, 3);     // 0.3, 0.6, 0.9 ran; nothing after 1.0
  EXPECT_EQ(sim.live_processes(), 1u);  // the bystander is still suspended
}

TEST(Simulator, CallAtSlotsAreRecycled) {
  // Self-rescheduling callback: the pooled slot must be reused, and state
  // captured by value must survive the move in and out of the pool.
  Simulator sim;
  struct Ticker {
    Simulator* sim;
    int* count;
    int left;
    void operator()() {
      ++*count;
      if (--left > 0) sim->call_at(sim->now() + 1.0, *this);
    }
  };
  int count = 0;
  sim.call_at(1.0, Ticker{&sim, &count, 5});
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

class DelayParamTest : public ::testing::TestWithParam<double> {};

// Property: a chain of n delays of dt lands exactly at n*dt (no drift from
// the event queue), for a spread of dt magnitudes.
TEST_P(DelayParamTest, NoClockDrift) {
  const double dt = GetParam();
  Simulator sim;
  auto proc = [](Simulator& s, double step) -> Task<void> {
    for (int i = 0; i < 1000; ++i) co_await s.delay(step);
  };
  sim.spawn(proc(sim, dt));
  sim.run();
  EXPECT_NEAR(sim.now(), 1000 * dt, 1000 * dt * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DelayMagnitudes, DelayParamTest,
                         ::testing::Values(1e-6, 1e-3, 0.1, 1.0, 60.0));

}  // namespace
}  // namespace bs::sim
