// Snapshot/dataset seam tests (unit tier): fs::Snapshot pinning on both
// back-ends — BSFS's true version pinning vs the generic length-pinning
// fallback and its visibly-stale asymmetry — the SnapshotRegistry pin
// bookkeeping, and mr::Dataset's resolve-once / read-pinned contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "fs/filesystem.h"
#include "hdfs/hdfs.h"
#include "mr/dataset.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace bs {
namespace {

constexpr uint64_t kBlock = 4096;
constexpr uint64_t kPage = 1024;

net::ClusterConfig test_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.nodes_per_rack = 4;
  return cfg;
}

struct SnapWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs bsfs;
  hdfs::Hdfs hdfs;

  SnapWorld()
      : net(sim, test_net()), blobs(sim, net, {}),
        ns(sim, net, bsfs::NamespaceConfig{}),
        bsfs(sim, net, blobs, ns,
             bsfs::BsfsConfig{.block_size = kBlock, .page_size = kPage,
                              .replication = 1, .enable_cache = true}),
        hdfs(sim, net,
             hdfs::HdfsConfig{.namenode = {.block_size = kBlock,
                                           .replication = 1}}) {}

  fs::FileSystem& get(const std::string& name) {
    if (name == "BSFS") return bsfs;
    return hdfs;
  }
};

sim::Task<bool> write_file(fs::FsClient& client, std::string path,
                           DataSpec data) {
  auto writer = co_await client.create(path);
  if (!writer) co_return false;
  const bool wrote = co_await writer->write(std::move(data));
  if (!wrote) co_return false;
  co_return co_await writer->close();
}

class SnapshotInterfaceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotInterfaceTest, SnapshotPinsPathAndLength) {
  SnapWorld w;
  auto client = w.get(GetParam()).make_client(2);
  std::optional<fs::Snapshot> snap;
  std::optional<Bytes> pinned_read;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::optional<Bytes>* data) -> sim::Task<void> {
    co_await write_file(c, "/d/f", DataSpec::pattern(5, 0, kBlock * 2 + 100));
    *out = co_await c.snapshot("/d/f");
    if (!out->has_value()) co_return;
    auto reader = co_await c.open_snapshot(**out);
    if (reader == nullptr) co_return;
    auto all = co_await reader->read(0, reader->size());
    *data = all.materialize();
  };
  w.sim.spawn(proc(*client, &snap, &pinned_read));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->path, "/d/f");
  EXPECT_EQ(snap->size, kBlock * 2 + 100);
  EXPECT_EQ(snap->block_size, kBlock);
  ASSERT_TRUE(pinned_read.has_value());
  EXPECT_TRUE(DataSpec::from_bytes(*pinned_read)
                  .content_equals(DataSpec::pattern(5, 0, kBlock * 2 + 100)));
}

TEST_P(SnapshotInterfaceTest, SnapshotOfMissingOrDirectoryIsNull) {
  SnapWorld w;
  auto client = w.get(GetParam()).make_client(0);
  bool missing_null = false, dir_null = false;
  auto proc = [](fs::FsClient& c, bool* miss, bool* dir) -> sim::Task<void> {
    co_await write_file(c, "/dir/child", DataSpec::from_string("x"));
    auto a = co_await c.snapshot("/no/such/file");
    *miss = !a.has_value();
    auto b = co_await c.snapshot("/dir");
    *dir = !b.has_value();
  };
  w.sim.spawn(proc(*client, &missing_null, &dir_null));
  w.sim.run();
  EXPECT_TRUE(missing_null);
  EXPECT_TRUE(dir_null);
}

TEST_P(SnapshotInterfaceTest, SnapshotLocationsCoverThePinnedExtent) {
  SnapWorld w;
  auto client = w.get(GetParam()).make_client(1);
  std::optional<fs::Snapshot> snap;
  std::vector<fs::BlockLocation> locs;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::vector<fs::BlockLocation>* l) -> sim::Task<void> {
    co_await write_file(c, "/big", DataSpec::pattern(3, 0, kBlock * 4 + 17));
    *out = co_await c.snapshot("/big");
    if (!out->has_value()) co_return;
    *l = co_await c.snapshot_locations(**out, 0, (*out)->size);
  };
  w.sim.spawn(proc(*client, &snap, &locs));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(locs.size(), 5u);
  uint64_t covered = 0;
  for (const auto& l : locs) {
    EXPECT_FALSE(l.hosts.empty());
    covered += l.length;
  }
  EXPECT_EQ(covered, snap->size);
}

INSTANTIATE_TEST_SUITE_P(Backends, SnapshotInterfaceTest,
                         ::testing::Values("BSFS", "HDFS"));

// --- the back-end asymmetry (the §V experiment in miniature) ---

TEST(SnapshotAsymmetry, BsfsSnapshotIsolatesFromConcurrentAppends) {
  // True version pinning: an appender lands new data after the snapshot;
  // the pinned reader still serves the OLD version byte-exactly, at the
  // old length.
  SnapWorld w;
  auto client = w.bsfs.make_client(2);
  std::optional<fs::Snapshot> snap;
  std::optional<Bytes> pinned;
  uint64_t live_size = 0;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::optional<Bytes>* old_data,
                 uint64_t* live) -> sim::Task<void> {
    co_await write_file(c, "/v", DataSpec::pattern(1, 0, kBlock));
    *out = co_await c.snapshot("/v");
    auto writer = co_await c.append("/v");
    co_await writer->write(DataSpec::pattern(2, 0, kBlock));
    co_await writer->close();
    auto st = co_await c.stat("/v");
    *live = st->size;
    auto reader = co_await c.open_snapshot(**out);
    if (reader == nullptr) co_return;
    auto all = co_await reader->read(0, kBlock * 2);  // past the pin: clamped
    *old_data = all.materialize();
  };
  w.sim.spawn(proc(*client, &snap, &pinned, &live_size));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->version, 0u);
  EXPECT_EQ(snap->size, kBlock);
  EXPECT_EQ(live_size, 2 * kBlock);
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(pinned->size(), kBlock);
  EXPECT_TRUE(DataSpec::from_bytes(*pinned)
                  .content_equals(DataSpec::pattern(1, 0, kBlock)));
}

TEST(SnapshotAsymmetry, HdfsLengthPinIsVisiblyStaleUnderRewrite) {
  // The length-pinning fallback: a concurrent re-writer (remove +
  // recreate — HDFS has no append) mutates the content under the pin. The
  // snapshot reader still truncates at the pinned length, but the bytes it
  // serves are the NEW ones — visibly stale, which is exactly the
  // isolation gap the ext7 bench quantifies.
  SnapWorld w;
  auto client = w.hdfs.make_client(2);
  std::optional<fs::Snapshot> snap;
  std::optional<Bytes> seen;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::optional<Bytes>* data) -> sim::Task<void> {
    co_await write_file(c, "/v", DataSpec::pattern(1, 0, kBlock));
    *out = co_await c.snapshot("/v");
    co_await c.remove("/v");
    co_await write_file(c, "/v", DataSpec::pattern(9, 0, kBlock * 2));
    auto reader = co_await c.open_snapshot(**out);
    if (reader == nullptr) co_return;
    auto all = co_await reader->read(0, kBlock * 2);
    *data = all.materialize();
  };
  w.sim.spawn(proc(*client, &snap, &seen));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->version, 0u);  // no real version to pin
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->size(), kBlock);  // length pin held...
  EXPECT_TRUE(DataSpec::from_bytes(*seen).content_equals(
      DataSpec::pattern(9, 0, kBlock)));  // ...but the content is the new one
}

TEST(SnapshotAsymmetry, BsfsSnapshotOfVersionedNamePinsThatVersion) {
  SnapWorld w;
  auto client = w.bsfs.make_client(1);
  std::optional<fs::Snapshot> snap;
  std::optional<Bytes> data;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::optional<Bytes>* bytes) -> sim::Task<void> {
    co_await write_file(c, "/log", DataSpec::pattern(1, 0, kBlock));
    for (int i = 0; i < 2; ++i) {
      auto writer = co_await c.append("/log");
      co_await writer->write(DataSpec::pattern(2 + i, 0, kBlock));
      co_await writer->close();
    }
    // Pin the historical version the first write published.
    *out = co_await c.snapshot(bsfs::versioned_path("/log", 1));
    if (!out->has_value()) co_return;
    auto reader = co_await c.open_snapshot(**out);
    if (reader == nullptr) co_return;
    auto all = co_await reader->read(0, reader->size());
    *bytes = all.materialize();
  };
  w.sim.spawn(proc(*client, &snap, &data));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->version, 1u);
  EXPECT_EQ(snap->size, kBlock);
  ASSERT_TRUE(data.has_value());
  EXPECT_TRUE(DataSpec::from_bytes(*data).content_equals(
      DataSpec::pattern(1, 0, kBlock)));
}

// --- SnapshotRegistry (pure bookkeeping, no simulation) ---

TEST(SnapshotRegistry, PinResolveUnpinLifecycle) {
  fs::SnapshotRegistry reg;
  EXPECT_EQ(reg.live_pins(), 0u);
  EXPECT_FALSE(reg.oldest_pinned("/a").has_value());

  const uint64_t intent = reg.pin_all("/a");
  EXPECT_EQ(reg.live_pins(), 1u);
  // An unresolved pin protects everything: version 0.
  ASSERT_TRUE(reg.oldest_pinned("/a").has_value());
  EXPECT_EQ(*reg.oldest_pinned("/a"), 0u);

  reg.resolve(intent, fs::Snapshot{"/a", 7, 100, 10});
  EXPECT_EQ(*reg.oldest_pinned("/a"), 7u);

  const uint64_t older = reg.pin(fs::Snapshot{"/a", 3, 50, 10});
  const uint64_t other = reg.pin(fs::Snapshot{"/b", 2, 50, 10});
  EXPECT_EQ(reg.live_pins(), 3u);
  EXPECT_EQ(*reg.oldest_pinned("/a"), 3u);  // the oldest pin wins
  EXPECT_EQ(*reg.oldest_pinned("/b"), 2u);

  reg.unpin(older);
  EXPECT_EQ(*reg.oldest_pinned("/a"), 7u);
  reg.unpin(intent);
  reg.unpin(other);
  EXPECT_EQ(reg.live_pins(), 0u);
  EXPECT_FALSE(reg.oldest_pinned("/a").has_value());
}

TEST(SnapshotRegistry, PinAllOnVersionedNameGuardsTheBasePath) {
  // A job submitted with a version-decorated input ("<path>@v<N>") takes
  // its pre-resolution pin_all lease under that literal name, but
  // retention looks paths up by their namespace-walk BASE name — the
  // lease must still hold the base path's history until resolution.
  fs::SnapshotRegistry reg;
  const uint64_t lease = reg.pin_all("/ingest/log@v5");
  ASSERT_TRUE(reg.oldest_pinned("/ingest/log").has_value());
  EXPECT_EQ(*reg.oldest_pinned("/ingest/log"), 0u);  // keep everything
  reg.resolve(lease, fs::Snapshot{"/ingest/log", 5, 100, 10});
  EXPECT_EQ(*reg.oldest_pinned("/ingest/log"), 5u);
  // Names that are not version decorations guard only themselves.
  const uint64_t plain = reg.pin_all("/ingest/log@vx");
  EXPECT_EQ(*reg.oldest_pinned("/ingest/log"), 5u);
  reg.unpin(lease);
  reg.unpin(plain);
}

TEST(SnapshotRegistry, ObjectIdentityMatchSurvivesRename) {
  // A pin protects an OBJECT (Snapshot::object, the BSFS blob id), not a
  // name: if the pinned file is renamed mid-job, retention's walk finds
  // the same object under the new path and the pin must still cap it.
  fs::SnapshotRegistry reg;
  const uint64_t lease =
      reg.pin(fs::Snapshot{"/in", 4, 100, 10, /*object=*/77});
  // Path match under the old name, object match under the new one.
  EXPECT_EQ(*reg.oldest_pinned("/in"), 4u);
  EXPECT_FALSE(reg.oldest_pinned("/renamed").has_value());
  ASSERT_TRUE(reg.oldest_pinned("/renamed", 77).has_value());
  EXPECT_EQ(*reg.oldest_pinned("/renamed", 77), 4u);
  EXPECT_FALSE(reg.oldest_pinned("/renamed", 78).has_value());
  reg.unpin(lease);
}

TEST(SnapshotAsymmetry, BsfsPinSurvivesRemoveAndRecreate) {
  // The pin records the blob identity, not just the path: if the file is
  // removed and a NEW file created under the same name (reaching the same
  // version number with different bytes), the pinned reader keeps serving
  // the ORIGINAL object — never the impostor's bytes.
  SnapWorld w;
  auto client = w.bsfs.make_client(1);
  std::optional<fs::Snapshot> snap;
  std::optional<Bytes> seen;
  auto proc = [](fs::FsClient& c, std::optional<fs::Snapshot>* out,
                 std::optional<Bytes>* data) -> sim::Task<void> {
    co_await write_file(c, "/p", DataSpec::pattern(1, 0, kBlock));
    *out = co_await c.snapshot("/p");
    co_await c.remove("/p");
    co_await write_file(c, "/p", DataSpec::pattern(9, 0, kBlock));
    auto reader = co_await c.open_snapshot(**out);
    if (reader == nullptr || reader->size() != kBlock) co_return;
    auto all = co_await reader->read(0, reader->size());
    *data = all.materialize();
  };
  w.sim.spawn(proc(*client, &snap, &seen));
  w.sim.run();
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->object, 0u);
  ASSERT_TRUE(seen.has_value());
  EXPECT_TRUE(DataSpec::from_bytes(*seen).content_equals(
      DataSpec::pattern(1, 0, kBlock)));
}

// --- mr::Dataset ---

class DatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetTest, ResolvePinsRegistryAndReleaseUnpins) {
  SnapWorld w;
  fs::FileSystem& f = w.get(GetParam());
  auto client = f.make_client(0);
  auto stage = [](fs::FsClient& c) -> sim::Task<void> {
    co_await write_file(c, "/in/a", DataSpec::pattern(1, 0, kBlock));
    co_await write_file(c, "/in/b", DataSpec::pattern(2, 0, kBlock * 2));
  };
  w.sim.spawn(stage(*client));
  w.sim.run();

  mr::Dataset ds;
  auto resolve = [](fs::FileSystem* fsp, mr::Dataset* out) -> sim::Task<void> {
    // NB: a braced init-list inside a coroutine trips GCC 12; build the
    // vector first.
    std::vector<std::string> files = {"/in/a", "/in/b"};
    *out = co_await mr::Dataset::resolve(*fsp, 0, std::move(files));
  };
  w.sim.spawn(resolve(&f, &ds));
  w.sim.run();
  ASSERT_EQ(ds.snapshots().size(), 2u);
  EXPECT_EQ(ds.total_bytes(), kBlock * 3);
  EXPECT_EQ(f.registry().live_pins(), 2u);
  ASSERT_TRUE(f.registry().oldest_pinned("/in/a").has_value());
  EXPECT_EQ(*f.registry().oldest_pinned("/in/a"), ds.snapshots()[0].version);
  ds.release();
  EXPECT_EQ(f.registry().live_pins(), 0u);

  // Move-assignment over a lease-holding Dataset must not leak the old
  // pins in the registry.
  mr::Dataset first, second;
  auto resolve_one = [](fs::FileSystem* fsp, std::string path,
                        mr::Dataset* out) -> sim::Task<void> {
    std::vector<std::string> files = {std::move(path)};
    *out = co_await mr::Dataset::resolve(*fsp, 0, std::move(files));
  };
  w.sim.spawn(resolve_one(&f, "/in/a", &first));
  w.sim.spawn(resolve_one(&f, "/in/b", &second));
  w.sim.run();
  EXPECT_EQ(f.registry().live_pins(), 2u);
  first = std::move(second);  // /in/a's lease must be released here
  EXPECT_EQ(f.registry().live_pins(), 1u);
  EXPECT_FALSE(f.registry().oldest_pinned("/in/a").has_value());
  EXPECT_TRUE(f.registry().oldest_pinned("/in/b").has_value());
  first.release();
  EXPECT_EQ(f.registry().live_pins(), 0u);
}

TEST_P(DatasetTest, SplitsCoverExactlyThePinnedBytes) {
  SnapWorld w;
  fs::FileSystem& f = w.get(GetParam());
  auto client = f.make_client(1);
  auto stage = [](fs::FsClient& c) -> sim::Task<void> {
    co_await write_file(c, "/in", DataSpec::pattern(4, 0, kBlock * 3 + 17));
  };
  w.sim.spawn(stage(*client));
  w.sim.run();

  mr::Dataset ds;
  std::vector<mr::InputSplit> splits;
  auto plan = [](fs::FileSystem* fsp, mr::Dataset* out,
                 std::vector<mr::InputSplit>* sp) -> sim::Task<void> {
    std::vector<std::string> files = {"/in"};
    *out = co_await mr::Dataset::resolve(*fsp, 0, std::move(files));
    *sp = co_await out->plan_splits(0);
  };
  w.sim.spawn(plan(&f, &ds, &splits));
  w.sim.run();
  ASSERT_EQ(splits.size(), 4u);
  uint64_t covered = 0;
  for (const auto& s : splits) {
    EXPECT_EQ(s.input, 0u);
    EXPECT_FALSE(s.hosts.empty());
    covered += s.length;
  }
  EXPECT_EQ(covered, ds.snapshots()[0].size);
}

INSTANTIATE_TEST_SUITE_P(Backends, DatasetTest,
                         ::testing::Values("BSFS", "HDFS"));

TEST(DatasetBsfs, OpenSplitIgnoresAppendsAfterThePin) {
  // The split-pinning contract retried/speculative attempts rely on:
  // readers opened from the Dataset keep the resolve-time size and bytes
  // even after an appender grows the live file.
  SnapWorld w;
  auto client = w.bsfs.make_client(1);
  auto stage = [](fs::FsClient& c) -> sim::Task<void> {
    co_await write_file(c, "/in", DataSpec::pattern(6, 0, kBlock * 2));
  };
  w.sim.spawn(stage(*client));
  w.sim.run();

  mr::Dataset ds;
  std::vector<mr::InputSplit> splits;
  auto plan = [](fs::FileSystem* fsp, mr::Dataset* out,
                 std::vector<mr::InputSplit>* sp) -> sim::Task<void> {
    std::vector<std::string> files = {"/in"};
    *out = co_await mr::Dataset::resolve(*fsp, 0, std::move(files));
    *sp = co_await out->plan_splits(0);
  };
  w.sim.spawn(plan(&w.bsfs, &ds, &splits));
  w.sim.run();
  ASSERT_EQ(splits.size(), 2u);

  uint64_t ingested_before = 1, ingested_after = 0;
  bool reads_pinned = false;
  auto grow_and_read = [](fs::FsClient& c, mr::Dataset* d,
                          const mr::InputSplit* split, uint64_t* before,
                          uint64_t* after, bool* ok) -> sim::Task<void> {
    *before = co_await d->bytes_ingested_since_pin(0);
    auto writer = co_await c.append("/in");
    co_await writer->write(DataSpec::pattern(7, 0, kBlock * 3));
    co_await writer->close();
    *after = co_await d->bytes_ingested_since_pin(0);
    auto reader = co_await d->open_split(c, *split);
    if (reader == nullptr) co_return;
    if (reader->size() != kBlock * 2) co_return;  // pinned, not live
    auto got = co_await reader->read(split->offset, split->length);
    *ok = got.content_equals(
        DataSpec::pattern(6, 0, kBlock * 2).slice(split->offset, split->length));
  };
  w.sim.spawn(grow_and_read(*client, &ds, &splits[1], &ingested_before,
                            &ingested_after, &reads_pinned));
  w.sim.run();
  EXPECT_EQ(ingested_before, 0u);
  EXPECT_EQ(ingested_after, kBlock * 3);
  EXPECT_TRUE(reads_pinned);
}

}  // namespace
}  // namespace bs
