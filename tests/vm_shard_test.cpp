// Sharded metadata plane (PR 10): the version manager's per-blob serial
// points and the namespace's per-path entry owners are spread over a
// consistent-hash ring. These tests pin the three claims the sharding
// rests on:
//   * routing actually spreads — sequential ids/sibling paths cover every
//     shard (regression for the FNV lattice that once parked half the keys
//     on one shard);
//   * a sharded world and a centralized (legacy) world running the same
//     concurrent-append storm produce IDENTICAL per-blob version chains —
//     sharding moved the serial point, it did not change per-blob ordering;
//   * cross-shard rename keeps exactly-one-winner semantics, and leases
//     never serve stale metadata (publish/rename invalidation + TTL).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "blob/cluster.h"
#include "bsfs/bsfs.h"
#include "common/rng.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bs {
namespace {

constexpr uint64_t kBlock = 8192;
constexpr uint64_t kPage = kBlock / 8;

net::ClusterConfig small_net() {
  net::ClusterConfig cfg;
  cfg.num_nodes = 24;
  cfg.nodes_per_rack = 6;
  return cfg;
}

// The BS_LEGACY_VM=1 oracle sweep (CI) centralizes the whole metadata
// plane — the sharding-dependent cases have nothing to shard there (the
// net_test BS_LEGACY_SOLVER skip pattern).
bool legacy_vm_forced() {
  const char* env = std::getenv("BS_LEGACY_VM");
  return env != nullptr && env[0] == '1';
}

std::vector<net::NodeId> shard_set(uint32_t count) {
  std::vector<net::NodeId> nodes;
  for (uint32_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<net::NodeId>(2 * i + 1));
  }
  return nodes;
}

// --- routing dispersion -----------------------------------------------------

TEST(VmShard, SequentialBlobIdsCoverEveryShard) {
  if (legacy_vm_forced()) GTEST_SKIP() << "BS_LEGACY_VM forces centralized";
  sim::Simulator sim;
  net::Network net(sim, small_net());
  blob::BlobSeerConfig cfg;
  cfg.version_manager_nodes = shard_set(8);
  blob::BlobSeerCluster cluster(sim, net, cfg);
  auto& vm = cluster.version_manager();
  ASSERT_EQ(vm.shard_count(), 8u);

  // Blob ids are handed out sequentially (1, 2, 3, ...). A weakly mixed
  // hash walks the ring in a lattice and parks most ids on a few shards;
  // 64 consecutive ids must touch all 8.
  std::set<net::NodeId> owners;
  for (blob::BlobId b = 1; b <= 64; ++b) owners.insert(vm.shard_node(b));
  EXPECT_EQ(owners.size(), 8u);
}

TEST(VmShard, SiblingPathsCoverEveryShard) {
  if (legacy_vm_forced()) GTEST_SKIP() << "BS_LEGACY_VM forces centralized";
  sim::Simulator sim;
  net::Network net(sim, small_net());
  bsfs::NamespaceConfig cfg;
  cfg.shard_nodes = shard_set(8);
  bsfs::NamespaceManager ns(sim, net, cfg);
  ASSERT_EQ(ns.shard_count(), 8u);

  std::set<net::NodeId> owners;
  for (int i = 0; i < 64; ++i) {
    owners.insert(ns.shard_node("/data/file" + std::to_string(i)));
  }
  EXPECT_EQ(owners.size(), 8u);
}

// --- the sharded-vs-legacy chain oracle --------------------------------------
//
// Same seeds, same concurrent append storm, one sharded world and one
// centralized world. Each blob's append size is fixed (derived from its
// index), so its chain is fully determined by HOW MANY appends landed on
// it — not by the cross-blob interleaving, which sharding legitimately
// changes. Identical chains + published versions = per-blob ordering
// semantics survived the sharding exactly.

struct ChainSet {
  std::vector<std::vector<blob::WriteRecord>> chains;
  std::vector<blob::Version> published;
  std::map<net::NodeId, uint64_t> per_shard;
};

ChainSet run_append_storm(bool legacy, uint64_t seed) {
  constexpr uint32_t kBlobs = 16;
  constexpr uint32_t kClients = 64;
  constexpr uint32_t kOps = 6;

  sim::Simulator sim;
  net::Network net(sim, small_net());
  blob::BlobSeerConfig cfg;
  cfg.vm_legacy = legacy;
  cfg.version_manager_nodes = shard_set(8);
  blob::BlobSeerCluster cluster(sim, net, cfg);
  auto& vm = cluster.version_manager();

  std::vector<blob::BlobId> ids;
  auto setup = [](blob::BlobSeerCluster* c,
                  std::vector<blob::BlobId>* out) -> sim::Task<void> {
    auto client = c->make_client(0);
    for (uint32_t i = 0; i < kBlobs; ++i) {
      const auto desc = co_await client->create(kPage, 1);
      out->push_back(desc.id);
    }
  };
  sim.spawn(setup(&cluster, &ids));
  sim.run();

  sim::WaitGroup wg(sim);
  wg.add(kClients);
  for (uint32_t i = 0; i < kClients; ++i) {
    auto appender = [](sim::Simulator* s, blob::VersionManager* mgr,
                       const std::vector<blob::BlobId>* blobs, uint64_t cseed,
                       sim::WaitGroup* done) -> sim::Task<void> {
      Rng rng(cseed);
      const net::NodeId node =
          static_cast<net::NodeId>(rng.below(24));
      for (uint32_t op = 0; op < kOps; ++op) {
        // Timing jitter: shifts the cross-blob interleaving without
        // touching per-blob append counts (the oracle's invariant).
        co_await s->delay(rng.uniform() * 0.002);
        const uint32_t b = static_cast<uint32_t>(rng.below(blobs->size()));
        const uint64_t bytes = (1 + b % 4) * kPage;
        auto ticket = co_await mgr->assign_write(
            node, (*blobs)[b], blob::VersionManager::kAppendOffset, bytes);
        co_await mgr->commit(node, (*blobs)[b], ticket.version);
        // Readers ride along: waiting for one's own publish exercises the
        // per-shard wake-up path without perturbing the chain.
        co_await mgr->wait_published(node, (*blobs)[b], ticket.version);
      }
      done->done();
    };
    sim.spawn(appender(&sim, &vm, &ids, splitmix64(seed + i), &wg));
  }
  sim.run();

  ChainSet out;
  auto harvest = [](blob::VersionManager* mgr,
                    const std::vector<blob::BlobId>* blobs,
                    ChainSet* sink) -> sim::Task<void> {
    for (blob::BlobId id : *blobs) {
      sink->chains.push_back(co_await mgr->full_history(0, id));
      sink->published.push_back(mgr->published_version(id));
    }
  };
  sim.spawn(harvest(&vm, &ids, &out));
  sim.run();
  out.per_shard = vm.requests_per_shard();
  return out;
}

TEST(VmShard, ShardedAndLegacyChainsIdentical) {
  if (legacy_vm_forced()) GTEST_SKIP() << "BS_LEGACY_VM forces centralized";
  for (uint64_t seed : {11u, 222u, 3333u}) {
    const ChainSet sharded = run_append_storm(/*legacy=*/false, seed);
    const ChainSet legacy = run_append_storm(/*legacy=*/true, seed);

    // The sharded run really sharded; the legacy run really did not.
    EXPECT_GT(sharded.per_shard.size(), 1u) << "seed " << seed;
    EXPECT_EQ(legacy.per_shard.size(), 1u) << "seed " << seed;

    ASSERT_EQ(sharded.chains.size(), legacy.chains.size());
    EXPECT_EQ(sharded.published, legacy.published) << "seed " << seed;
    for (size_t i = 0; i < sharded.chains.size(); ++i) {
      const auto& a = sharded.chains[i];
      const auto& b = legacy.chains[i];
      ASSERT_EQ(a.size(), b.size()) << "blob " << i << " seed " << seed;
      for (size_t v = 0; v < a.size(); ++v) {
        EXPECT_EQ(a[v].version, b[v].version);
        EXPECT_EQ(a[v].range.first, b[v].range.first);
        EXPECT_EQ(a[v].range.count, b[v].range.count);
        EXPECT_EQ(a[v].size_after, b[v].size_after);
        EXPECT_EQ(a[v].cap_after, b[v].cap_after);
      }
    }
  }
}

// --- cross-shard rename ------------------------------------------------------

TEST(VmShard, CrossShardRenameHasExactlyOneWinner) {
  if (legacy_vm_forced()) GTEST_SKIP() << "BS_LEGACY_VM forces centralized";
  sim::Simulator sim;
  net::Network net(sim, small_net());
  bsfs::NamespaceConfig cfg;
  cfg.shard_nodes = shard_set(8);
  bsfs::NamespaceManager ns(sim, net, cfg);

  // Pick two source paths owned by DIFFERENT shards, and a target owned by
  // yet another shard when possible — the rename decision then spans
  // owners and must still serialize to one winner.
  std::vector<std::string> sources;
  std::set<net::NodeId> used;
  for (int i = 0; sources.size() < 2 && i < 64; ++i) {
    const std::string p = "/race/src" + std::to_string(i);
    if (used.insert(ns.shard_node(p)).second) sources.push_back(p);
  }
  ASSERT_EQ(sources.size(), 2u);
  const std::string target = "/race/winner";

  auto stage = [](bsfs::NamespaceManager* n,
                  const std::vector<std::string>* paths) -> sim::Task<void> {
    for (size_t i = 0; i < paths->size(); ++i) {
      const bool added = co_await n->add_file(
          0, (*paths)[i], static_cast<blob::BlobId>(i + 1), kBlock);
      EXPECT_TRUE(added);
      EXPECT_TRUE(co_await n->finalize(0, (*paths)[i]));
    }
  };
  sim.spawn(stage(&ns, &sources));
  sim.run();

  bool won[2] = {false, false};
  auto racer = [](bsfs::NamespaceManager* n, std::string from,
                  std::string to, bool* result) -> sim::Task<void> {
    *result = co_await n->rename(1, from, to);
  };
  sim.spawn(racer(&ns, sources[0], target, &won[0]));
  sim.spawn(racer(&ns, sources[1], target, &won[1]));
  sim.run();

  EXPECT_NE(won[0], won[1]) << "exactly one rename must win";
  auto verify = [](bsfs::NamespaceManager* n, std::string t,
                   const std::vector<std::string>* srcs,
                   const bool* winners) -> sim::Task<void> {
    auto entry = co_await n->lookup(0, t);
    EXPECT_TRUE(entry.has_value());
    if (!entry.has_value()) co_return;
    // The target holds the winner's blob; the loser's file is untouched.
    const size_t w = winners[0] ? 0 : 1;
    EXPECT_EQ(entry->blob, static_cast<blob::BlobId>(w + 1));
    EXPECT_FALSE((co_await n->lookup(0, (*srcs)[w])).has_value());
    EXPECT_TRUE((co_await n->lookup(0, (*srcs)[1 - w])).has_value());
  };
  sim.spawn(verify(&ns, target, &sources, won));
  sim.run();
}

// --- lease correctness -------------------------------------------------------

struct LeaseWorld {
  sim::Simulator sim;
  net::Network net;
  blob::BlobSeerCluster blobs;
  bsfs::NamespaceManager ns;
  bsfs::Bsfs fs;

  explicit LeaseWorld(double ttl_s)
      : net(sim, small_net()),
        blobs(sim, net, sharded_cfg()),
        ns(sim, net, ns_cfg()),
        fs(sim, net, blobs, ns,
           bsfs::BsfsConfig{.block_size = kBlock,
                            .page_size = kPage,
                            .replication = 1,
                            .enable_cache = true,
                            .lease_ttl_s = ttl_s}) {}

  static blob::BlobSeerConfig sharded_cfg() {
    blob::BlobSeerConfig cfg;
    cfg.version_manager_nodes = shard_set(4);
    return cfg;
  }
  static bsfs::NamespaceConfig ns_cfg() {
    bsfs::NamespaceConfig cfg;
    cfg.shard_nodes = shard_set(4);
    return cfg;
  }
};

sim::Task<void> put_file(bsfs::Bsfs* fs, const std::string& path,
                         uint64_t bytes) {
  auto client = fs->make_client(1);
  auto writer = co_await client->create(path);
  co_await writer->write(DataSpec::pattern(7, 0, bytes));
  co_await writer->close();
}

// A publish must be visible through a still-live lease immediately: the
// lease checks the published version (the invalidation channel), not just
// its TTL.
TEST(VmShard, LeaseNeverServesStaleSizeAcrossPublish) {
  LeaseWorld w(/*ttl_s=*/1e6);
  w.sim.spawn(put_file(&w.fs, "/lease/f", kBlock));
  w.sim.run();

  auto scenario = [](LeaseWorld* w) -> sim::Task<void> {
    auto reader = w->fs.make_client(2);
    auto st = co_await reader->stat("/lease/f");
    EXPECT_TRUE(st.has_value());
    if (!st.has_value()) co_return;
    EXPECT_EQ(st->size, kBlock);

    // Warm lease: an immediate re-stat is served locally.
    const uint64_t hits_before = w->fs.vm_lease_hits();
    st = co_await reader->stat("/lease/f");
    EXPECT_EQ(st->size, kBlock);
    EXPECT_GT(w->fs.vm_lease_hits(), hits_before);

    // Append + publish from another node...
    auto appender = w->fs.make_client(3);
    auto writer = co_await appender->append("/lease/f");
    EXPECT_NE(writer, nullptr);
    if (writer == nullptr) co_return;
    co_await writer->write(DataSpec::pattern(8, 0, kBlock));
    co_await writer->close();

    // ...and the leased reader sees the new size with NO TTL wait.
    st = co_await reader->stat("/lease/f");
    EXPECT_TRUE(st.has_value());
    if (st.has_value()) {
      EXPECT_EQ(st->size, 2 * kBlock);
    }
  };
  w.sim.spawn(scenario(&w));
  w.sim.run();
}

// A rename must kill leases on the old path immediately (namespace
// mutation epoch), even within the TTL.
TEST(VmShard, LeaseInvalidatedOnRename) {
  LeaseWorld w(/*ttl_s=*/1e6);
  w.sim.spawn(put_file(&w.fs, "/lease/old", kBlock));
  w.sim.run();

  auto scenario = [](LeaseWorld* w) -> sim::Task<void> {
    auto reader = w->fs.make_client(2);
    auto st = co_await reader->stat("/lease/old");
    EXPECT_TRUE(st.has_value());  // lease on "/lease/old" is now warm

    auto mover = w->fs.make_client(3);
    EXPECT_TRUE(co_await mover->rename("/lease/old", "/lease/new"));

    st = co_await reader->stat("/lease/old");
    EXPECT_FALSE(st.has_value()) << "stale lease served a renamed-away path";
    st = co_await reader->stat("/lease/new");
    EXPECT_TRUE(st.has_value());
    if (st.has_value()) {
      EXPECT_EQ(st->size, kBlock);
    }
  };
  w.sim.spawn(scenario(&w));
  w.sim.run();
}

// TTL expiry forces a re-fetch even when nothing changed.
TEST(VmShard, LeaseTtlExpiryForcesRefetch) {
  LeaseWorld w(/*ttl_s=*/0.5);
  w.sim.spawn(put_file(&w.fs, "/lease/f", kBlock));
  w.sim.run();

  auto scenario = [](LeaseWorld* w) -> sim::Task<void> {
    auto reader = w->fs.make_client(2);
    co_await reader->stat("/lease/f");
    const uint64_t misses_warm = w->fs.vm_lease_misses();
    co_await reader->stat("/lease/f");
    EXPECT_EQ(w->fs.vm_lease_misses(), misses_warm) << "within TTL: a hit";

    co_await w->sim.delay(1.0);  // past the TTL
    co_await reader->stat("/lease/f");
    EXPECT_GT(w->fs.vm_lease_misses(), misses_warm)
        << "expired lease must re-fetch";
  };
  w.sim.spawn(scenario(&w));
  w.sim.run();
}

// Leases default off: zero traffic through the cache counters.
TEST(VmShard, LeasesOffByDefault) {
  LeaseWorld w(/*ttl_s=*/0);
  w.sim.spawn(put_file(&w.fs, "/lease/f", kBlock));
  w.sim.run();

  auto scenario = [](LeaseWorld* w) -> sim::Task<void> {
    auto reader = w->fs.make_client(2);
    co_await reader->stat("/lease/f");
    co_await reader->stat("/lease/f");
  };
  w.sim.spawn(scenario(&w));
  w.sim.run();
  EXPECT_EQ(w.fs.ns_lease_hits(), 0u);
  EXPECT_EQ(w.fs.vm_lease_hits(), 0u);
  EXPECT_EQ(w.fs.ns_lease_misses(), 0u);
  EXPECT_EQ(w.fs.vm_lease_misses(), 0u);
}

}  // namespace
}  // namespace bs
