// bslint — project-specific static analysis (determinism sanitizer layer 3).
//
// A deliberately small, dependency-free checker (token/regex level, no
// libclang) that walks src/ tests/ bench/ and enforces the project rules
// that keep the simulation bit-reproducible and the coroutine engine out of
// known compiler traps:
//
//   wall-clock               no wall-clock time sources in simulated code —
//                            sim::Simulator::now() is the only clock.
//   unseeded-rand            no rand()/srand()/std::random_device/
//                            std::default_random_engine — all randomness
//                            flows through the seeded bs::Rng.
//   raw-unordered            no raw std::unordered_* outside
//                            src/common/container.h — use the hash-order-
//                            scrambled bs::unordered_map/set aliases.
//   pointer-key              no pointer-keyed std::map/std::set (or bs::
//                            unordered aliases): address order varies run
//                            to run, so iteration leaks allocator state.
//   coro-label-temporaries   no std::string + initializer-list temporaries
//                            (obs label lists `{{"k", v}}`) inside Task<>
//                            coroutine bodies — GCC 12.2 at -O2 miscompiles
//                            the frame (the PR-6 class); hoist into a plain
//                            noinline helper like register_job_metrics.
//   unsorted-emitter         json_snapshot/debug_string/text_snapshot/
//                            write_json bodies must not iterate unordered
//                            containers: emitters define the byte-identical
//                            surface, so they traverse sorted state only.
//
// Inline suppression (same line or the line directly above):
//   // bslint: allow(rule-id)          one rule
//   // bslint: allow(rule-a,rule-b)    several
//
// Usage:
//   bslint [--report <path>] [--list-rules] <dir-or-file>...
//   bslint --self-test
//
// Exit codes: 0 clean, 1 unsuppressed hits (or self-test failure), 2 usage
// or I/O error.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Source model: each physical line split into code and comment parts, with
// string/char literal contents blanked (quotes kept) so rule patterns never
// fire inside literals, and comment text kept for suppression markers.

struct SourceLine {
  std::string code;     // literals blanked, comments removed
  std::string comment;  // concatenated comment text on this line
  bool in_coro = false;     // any part of the line is inside a Task<> body
  bool in_emitter = false;  // ... inside a snapshot/debug emitter body
};

struct Hit {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
};

// Splits raw file content into SourceLines. A single forward scan tracks
// block comments, string/char literals (escapes honored), and basic raw
// strings R"( ... )".
std::vector<SourceLine> split_lines(const std::string& text) {
  std::vector<SourceLine> out;
  out.emplace_back();
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      // Unterminated string at EOL: malformed source; reset defensively.
      if (st == St::kString || st == St::kChar) st = St::kCode;
      out.emplace_back();
      continue;
    }
    SourceLine& line = out.back();
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (line.code.empty() ||
                    !(std::isalnum(static_cast<unsigned char>(
                          line.code.back())) ||
                      line.code.back() == '_'))) {
          line.code += "R\"";
          st = St::kRaw;
          ++i;
        } else if (c == '"') {
          line.code += '"';
          st = St::kString;
        } else if (c == '\'') {
          line.code += '\'';
          st = St::kChar;
        } else {
          line.code += c;
        }
        break;
      case St::kLineComment:
        line.comment += c;
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case St::kString:
      case St::kChar: {
        const char quote = st == St::kString ? '"' : '\'';
        if (c == '\\') {
          line.code += ' ';
          if (next != '\0' && next != '\n') {
            line.code += ' ';
            ++i;
          }
        } else if (c == quote) {
          line.code += quote;
          st = St::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
      case St::kRaw:
        if (c == ')' && next == '"') {
          line.code += ")\"";
          st = St::kCode;
          ++i;
        } else {
          line.code += ' ';
        }
        break;
    }
  }
  return out;
}

// Marks lines belonging to Task<>-returning function/lambda bodies and to
// snapshot-emitter bodies. Brace-depth walk over the blanked code: when a
// `{` opens, the text since the previous `{`/`}`/`;` decides what kind of
// frame it is; plain scope braces inherit the enclosing frame's flags, new
// function-like frames compute their own (a helper lambda inside a coroutine
// runs on the native stack, not in the coroutine frame).
void mark_contexts(std::vector<SourceLine>& lines) {
  static const std::regex kCoroIntro(R"(\bTask\s*<)");
  static const std::regex kEmitterIntro(
      R"(\b(json_snapshot|debug_string|text_snapshot|write_json)\s*\()");
  static const std::regex kFuncIntro(
      R"(\)\s*(const|noexcept|override|final|mutable|->\s*[\w:<>&*,\s]+)*\s*$)");
  static const std::regex kControlIntro(
      R"(\b(if|for|while|switch|catch|do|else)\b)");

  struct Frame {
    bool coro = false;
    bool emitter = false;
  };
  std::vector<Frame> stack;
  stack.push_back({});  // file scope
  std::string intro;    // code since the last {, }, or ;

  for (SourceLine& line : lines) {
    for (const char c : line.code) {
      if (c == '{') {
        Frame f = stack.back();  // inherit by default (if/for/plain scope)
        std::string trimmed = intro;
        const bool func_like = std::regex_search(trimmed, kFuncIntro) &&
                               !std::regex_search(trimmed, kControlIntro);
        if (func_like) {
          f.coro = std::regex_search(trimmed, kCoroIntro);
          f.emitter = std::regex_search(trimmed, kEmitterIntro);
        }
        stack.push_back(f);
        intro.clear();
      } else if (c == '}') {
        if (stack.size() > 1) stack.pop_back();
        intro.clear();
      } else if (c == ';') {
        intro.clear();
      } else {
        intro += c;
      }
      if (stack.back().coro) line.in_coro = true;
      if (stack.back().emitter) line.in_emitter = true;
    }
    intro += '\n';
  }
}

// ---------------------------------------------------------------------------
// Rules.

struct Rule {
  std::string id;
  std::string description;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"wall-clock",
       "wall-clock time source in simulated code (use sim::Simulator::now)"},
      {"unseeded-rand",
       "unseeded/system randomness (use the seeded bs::Rng)"},
      {"raw-unordered",
       "raw std::unordered_* outside common/container.h (use "
       "bs::unordered_map/set)"},
      {"pointer-key",
       "pointer-keyed ordered/unordered container (address order is "
       "nondeterministic)"},
      {"coro-label-temporaries",
       "std::string initializer-list temporaries inside a Task<> coroutine "
       "body (GCC 12 frame miscompile class; hoist to a plain helper)"},
      {"unsorted-emitter",
       "snapshot/debug emitter iterates an unordered container (emitters "
       "must traverse sorted state)"},
  };
  return kRules;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

void add_hit(std::vector<Hit>* hits, const std::string& file, size_t line_no,
             const char* rule, const std::string& msg) {
  hits->push_back(Hit{file, line_no, rule, msg, false});
}

void scan_line_rules(const std::string& file,
                     const std::vector<SourceLine>& lines,
                     std::vector<Hit>* hits) {
  static const std::regex kWallClock(
      R"(\b(std::chrono::(system_clock|steady_clock|high_resolution_clock)|gettimeofday|clock_gettime|timespec_get|localtime|gmtime|mktime|asctime|ctime)\b|\bstd::time\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  static const std::regex kRand(
      R"(\brandom_device\b|\bdefault_random_engine\b|\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\))");
  static const std::regex kRawUnordered(R"(std::unordered_|<unordered_(map|set)>)");
  static const std::regex kCoroTemporaries(R"(\{\{\s*(\"|std::))");

  const bool container_header = path_contains(file, "common/container.h");

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.empty()) continue;
    const size_t n = i + 1;
    if (std::regex_search(code, kWallClock)) {
      add_hit(hits, file, n, "wall-clock",
              "wall-clock/system time source; the simulator clock "
              "(sim.now()) is the only time in this codebase");
    }
    if (std::regex_search(code, kRand)) {
      add_hit(hits, file, n, "unseeded-rand",
              "system randomness; use the deterministic seeded bs::Rng");
    }
    if (!container_header && std::regex_search(code, kRawUnordered)) {
      add_hit(hits, file, n, "raw-unordered",
              "raw std::unordered_* container; use bs::unordered_map/set "
              "from common/container.h (hash-order scrambled)");
    }
    if (lines[i].in_coro && std::regex_search(code, kCoroTemporaries)) {
      add_hit(hits, file, n, "coro-label-temporaries",
              "string initializer-list temporaries inside a Task<> "
              "coroutine body miscompile under GCC 12 -O2; hoist into a "
              "plain [[gnu::noinline]] helper");
    }
  }
}

// Multi-line declarations (pointer keys, unordered members) are matched on
// the joined code stream; hit lines recovered by offset.
void scan_joined_rules(const std::string& file,
                       const std::vector<SourceLine>& lines,
                       std::vector<Hit>* hits) {
  std::string joined;
  std::vector<size_t> line_of_offset;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t k = 0; k <= lines[i].code.size(); ++k) {
      line_of_offset.push_back(i + 1);
    }
    joined += lines[i].code;
    joined += '\n';
  }
  auto line_at = [&](size_t off) {
    return off < line_of_offset.size() ? line_of_offset[off] : lines.size();
  };

  static const std::regex kPointerKey(
      R"((std::map|std::set|bs::unordered_map|bs::unordered_set)\s*<\s*(const\s+)?[\w:]+(\s*<[^<>]*>)?\s*\*\s*[,>])");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(),
                                      kPointerKey);
       it != std::sregex_iterator(); ++it) {
    add_hit(hits, file, line_at(static_cast<size_t>(it->position())),
            "pointer-key",
            "pointer-keyed container: iteration follows allocation "
            "addresses, which vary run to run; key by a stable id");
  }

  // unsorted-emitter: collect unordered member/local names declared in this
  // file, then flag emitter-body lines that iterate them or that name an
  // unordered type at all.
  static const std::regex kUnorderedDecl(
      R"(unordered_(map|set)\s*<[^;{}()]*?>\s+(\w+)\s*[;={])");
  std::set<std::string> unordered_names;
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(),
                                      kUnorderedDecl);
       it != std::sregex_iterator(); ++it) {
    unordered_names.insert((*it)[2].str());
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].in_emitter || lines[i].code.empty()) continue;
    const std::string& code = lines[i].code;
    bool flagged = code.find("unordered_") != std::string::npos;
    if (!flagged) {
      static const std::regex kRangeFor(R"(for\s*\([^)]*:\s*(\w+)\s*\))");
      std::smatch m;
      if (std::regex_search(code, m, kRangeFor) &&
          unordered_names.count(m[1].str()) > 0) {
        flagged = true;
      }
    }
    if (flagged) {
      add_hit(hits, file, i + 1, "unsorted-emitter",
              "emitter (json_snapshot/debug_string/...) touches an "
              "unordered container; snapshot surfaces must iterate sorted "
              "state to stay byte-identical");
    }
  }
}

// Applies `// bslint: allow(a,b)` suppressions from the same line or the
// line directly above.
void apply_suppressions(const std::vector<SourceLine>& lines,
                        std::vector<Hit>* hits) {
  auto allowed = [&](size_t line_no, const std::string& rule) {
    static const std::regex kAllow(R"(bslint:\s*allow\(([^)]*)\))");
    for (size_t n : {line_no, line_no - 1}) {
      if (n == 0 || n > lines.size()) continue;
      const std::string& comment = lines[n - 1].comment;
      for (auto it = std::sregex_iterator(comment.begin(), comment.end(),
                                          kAllow);
           it != std::sregex_iterator(); ++it) {
        std::stringstream ss((*it)[1].str());
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          const size_t b = tok.find_first_not_of(" \t");
          const size_t e = tok.find_last_not_of(" \t");
          if (b == std::string::npos) continue;
          const std::string name = tok.substr(b, e - b + 1);
          if (name == rule || name == "all") return true;
        }
      }
    }
    return false;
  };
  for (Hit& h : *hits) h.suppressed = allowed(h.line, h.rule);
}

std::vector<Hit> scan_content(const std::string& file,
                              const std::string& content) {
  std::vector<SourceLine> lines = split_lines(content);
  mark_contexts(lines);
  std::vector<Hit> hits;
  scan_line_rules(file, lines, &hits);
  scan_joined_rules(file, lines, &hits);
  apply_suppressions(lines, &hits);
  return hits;
}

// ---------------------------------------------------------------------------
// Self-test: every rule has positive, negative, and suppressed fixtures.

struct Fixture {
  const char* name;
  const char* path;
  const char* source;
  const char* rule;      // rule expected to fire (nullptr: expect clean)
  int expected_hits;     // unsuppressed hits of `rule`
  int expected_suppressed = 0;
};

int run_self_test() {
  const std::vector<Fixture> fixtures = {
      // wall-clock
      {"wall-clock: system_clock fires", "src/x.cpp",
       "double t() { return std::chrono::system_clock::now().time_since_epoch().count(); }",
       "wall-clock", 1},
      {"wall-clock: time(nullptr) fires", "src/x.cpp",
       "long t() { return time(nullptr); }", "wall-clock", 1},
      {"wall-clock: sim clock is fine", "src/x.cpp",
       "double t(bs::sim::Simulator& s) { return s.now(); }", "wall-clock",
       0},
      {"wall-clock: comment mention is fine", "src/x.cpp",
       "// steady_clock would break determinism\nint x = 1;", "wall-clock",
       0},
      {"wall-clock: suppression honored", "src/x.cpp",
       "long t() { return time(nullptr); }  // bslint: allow(wall-clock)",
       "wall-clock", 0, 1},
      // unseeded-rand
      {"unseeded-rand: random_device fires", "src/x.cpp",
       "uint64_t seed() { return std::random_device{}(); }", "unseeded-rand",
       1},
      {"unseeded-rand: rand() fires", "src/x.cpp",
       "int r() { return rand(); }", "unseeded-rand", 1},
      {"unseeded-rand: seeded Rng is fine", "src/x.cpp",
       "uint64_t r(bs::Rng& rng) { return rng.next(); }", "unseeded-rand", 0},
      {"unseeded-rand: string literal is fine", "src/x.cpp",
       "const char* kMsg = \"random_device is banned\";", "unseeded-rand", 0},
      {"unseeded-rand: suppression on previous line", "src/x.cpp",
       "// bslint: allow(unseeded-rand)\nint r() { return rand(); }",
       "unseeded-rand", 0, 1},
      // raw-unordered
      {"raw-unordered: declaration fires", "src/y.h",
       "#include <map>\nstd::unordered_map<int, int> m;", "raw-unordered", 1},
      {"raw-unordered: include fires", "src/y.h",
       "#include <unordered_set>", "raw-unordered", 1},
      {"raw-unordered: alias header is exempt", "src/common/container.h",
       "#include <unordered_map>\nstd::unordered_map<int, int> m;",
       "raw-unordered", 0},
      {"raw-unordered: bs alias is fine", "src/y.h",
       "bs::unordered_map<int, int> m;", "raw-unordered", 0},
      {"raw-unordered: suppression honored", "src/y.h",
       "std::unordered_map<int, int> m;  // bslint: allow(raw-unordered)",
       "raw-unordered", 0, 1},
      // pointer-key
      {"pointer-key: std::set of pointers fires", "src/y.h",
       "std::set<Flow*> active;", "pointer-key", 1},
      {"pointer-key: multi-line map fires", "src/y.h",
       "std::map<const Node*,\n         int> depth;", "pointer-key", 1},
      {"pointer-key: bs alias with pointer key fires", "src/y.h",
       "bs::unordered_set<Provider*> up;", "pointer-key", 1},
      {"pointer-key: pointer VALUES are fine", "src/y.h",
       "std::map<uint64_t, Node*> by_id; bs::unordered_map<int, Page*> p;",
       "pointer-key", 0},
      {"pointer-key: suppression honored", "src/y.h",
       "std::set<Flow*> active;  // bslint: allow(pointer-key)",
       "pointer-key", 0, 1},
      // coro-label-temporaries
      {"coro-temporaries: labels in Task body fire", "src/z.cpp",
       "sim::Task<void> run(Sim& s) {\n"
       "  auto* c = &s.metrics().counter(\"mr/x\", {{\"job\", id}});\n"
       "  co_await s.delay(1);\n}",
       "coro-label-temporaries", 1},
      {"coro-temporaries: Task lambda fires", "src/z.cpp",
       "auto fn = [](Sim& s) -> sim::Task<void> {\n"
       "  reg.counter(\"x\", {{\"k\", \"v\"}});\n  co_return;\n};",
       "coro-label-temporaries", 1},
      {"coro-temporaries: plain function is fine", "src/z.cpp",
       "void register_metrics(Sim& s) {\n"
       "  s.metrics().counter(\"mr/x\", {{\"job\", id}});\n}",
       "coro-label-temporaries", 0},
      {"coro-temporaries: aggregate init in Task is fine", "src/z.cpp",
       "sim::Task<void> run(Sim& s) {\n"
       "  std::array<int, 2> a{{1, 2}};\n  co_await s.delay(a[0]);\n}",
       "coro-label-temporaries", 0},
      {"coro-temporaries: suppression honored", "src/z.cpp",
       "sim::Task<void> run(Sim& s) {\n"
       "  // bslint: allow(coro-label-temporaries)\n"
       "  reg.counter(\"x\", {{\"k\", \"v\"}});\n  co_return;\n}",
       "coro-label-temporaries", 0, 1},
      // unsorted-emitter
      {"unsorted-emitter: range-for over unordered member fires", "src/w.cpp",
       "struct S {\n  bs::unordered_map<int, int> load_;\n"
       "  std::string debug_string() const {\n"
       "    std::string out;\n"
       "    for (const auto& kv : load_) out += render(kv);\n"
       "    return out;\n  }\n};",
       "unsorted-emitter", 1},
      {"unsorted-emitter: unordered local in emitter fires", "src/w.cpp",
       "std::string json_snapshot() {\n"
       "  bs::unordered_set<int> seen;\n  return \"{}\";\n}",
       "unsorted-emitter", 1},
      {"unsorted-emitter: sorted map is fine", "src/w.cpp",
       "struct S {\n  std::map<std::string, int> entries_;\n"
       "  std::string text_snapshot() const {\n"
       "    std::string out;\n"
       "    for (const auto& kv : entries_) out += render(kv);\n"
       "    return out;\n  }\n};",
       "unsorted-emitter", 0},
      {"unsorted-emitter: unordered outside emitter body is fine",
       "src/w.cpp",
       "struct S {\n  bs::unordered_map<int, int> load_;\n"
       "  int total() const {\n"
       "    int t = 0;\n    for (const auto& kv : load_) t += kv.second;\n"
       "    return t;\n  }\n};",
       "unsorted-emitter", 0},
      {"unsorted-emitter: suppression honored", "src/w.cpp",
       "struct S {\n  bs::unordered_map<int, int> load_;\n"
       "  std::string debug_string() const {\n"
       "    std::string out;\n"
       "    // bslint: allow(unsorted-emitter)\n"
       "    for (const auto& kv : load_) out += render(kv);\n"
       "    return out;\n  }\n};",
       "unsorted-emitter", 0, 1},
  };

  int failures = 0;
  std::set<std::string> covered;
  for (const Fixture& f : fixtures) {
    const std::vector<Hit> hits = scan_content(f.path, f.source);
    int live = 0, suppressed = 0;
    for (const Hit& h : hits) {
      if (h.rule != f.rule) continue;
      if (h.suppressed) {
        ++suppressed;
      } else {
        ++live;
      }
    }
    covered.insert(f.rule);
    if (live != f.expected_hits || suppressed != f.expected_suppressed) {
      ++failures;
      std::fprintf(stderr,
                   "SELF-TEST FAIL: %s — rule %s expected %d hit(s) (%d "
                   "suppressed), got %d (%d suppressed)\n",
                   f.name, f.rule, f.expected_hits, f.expected_suppressed,
                   live, suppressed);
      for (const Hit& h : hits) {
        std::fprintf(stderr, "  saw %s:%zu [%s]%s\n", h.file.c_str(), h.line,
                     h.rule.c_str(), h.suppressed ? " (suppressed)" : "");
      }
    }
  }
  // Coverage gate: a rule added without fixtures fails the self-test, so
  // the "self-test covers every rule" invariant is mechanical, not manual.
  for (const Rule& r : rules()) {
    if (covered.count(r.id) == 0) {
      ++failures;
      std::fprintf(stderr, "SELF-TEST FAIL: rule %s has no fixtures\n",
                   r.id.c_str());
    }
  }
  if (failures == 0) {
    std::printf("bslint self-test: %zu fixtures, %zu rules covered, all "
                "passing\n",
                fixtures.size(), rules().size());
    return 0;
  }
  std::fprintf(stderr, "bslint self-test: %d failure(s)\n", failures);
  return 1;
}

// ---------------------------------------------------------------------------
// Driver.

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

int scan_tree(const std::vector<std::string>& roots,
              const std::string& report_path) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && scannable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "bslint: cannot read %s\n", root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::string report;
  size_t live = 0, suppressed = 0;
  std::map<std::string, size_t> per_rule;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "bslint: cannot open %s\n", p.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    for (const Hit& h : scan_content(p.generic_string(), ss.str())) {
      if (h.suppressed) {
        ++suppressed;
        continue;
      }
      ++live;
      ++per_rule[h.rule];
      char buf[64];
      std::snprintf(buf, sizeof(buf), ":%zu: ", h.line);
      report += h.file + buf + "[" + h.rule + "] " + h.message + "\n";
    }
  }
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "bslint: %zu file(s) scanned, %zu hit(s), %zu suppressed\n",
                files.size(), live, suppressed);
  report += summary;
  for (const auto& [rule, count] : per_rule) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %-24s %zu\n", rule.c_str(), count);
    report += buf;
  }
  std::fputs(report.c_str(), live > 0 ? stderr : stdout);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bslint: cannot write report %s\n",
                   report_path.c_str());
      return 2;
    }
    out << report;
  }
  return live > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      return run_self_test();
    } else if (arg == "--list-rules") {
      for (const Rule& r : rules()) {
        std::printf("%-24s %s\n", r.id.c_str(), r.description.c_str());
      }
      return 0;
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bslint: --report needs a path\n");
        return 2;
      }
      report_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bslint [--report <path>] [--list-rules] <dir-or-file>...\n"
          "       bslint --self-test\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "bslint: no inputs (try: bslint src tests bench)\n");
    return 2;
  }
  return scan_tree(roots, report_path);
}
